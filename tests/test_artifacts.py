"""Tests for the cross-experiment artifact graph (PR 5).

Covered here:

* the content-addressed :class:`~repro.runner.artifacts.ArtifactStore`
  (round trips, corruption-as-miss, name validation, listings, clearing);
* artifact keying (schema + name + canonical params + producer fingerprint);
* resolvers: inline compute without a store, compute-once/replay with one;
* the registry's ``ARTIFACTS`` declarations and the runner's deduplicated
  producer/consumer plan (``when`` gating, ``after`` levels, error cases);
* cold-run reuse: ``characterize_multiplier`` executes exactly once for the
  table1/fig2/fig3 batch, rows stay bit-identical to the no-reuse serial
  path, and ``jobs=2`` matches ``jobs=1`` byte for byte;
* invalidation chains: an (simulated) edit to ``repro.core.scaling``
  invalidates the characterization artifact and its three consumers' cached
  results while unrelated entries survive;
* the incremental precision search is bit-identical to the full-forward
  reference, including the quantisation fast paths it leans on;
* ``python -m repro cache stats`` round trips and ``cache clear`` resets.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

import repro.runner.artifacts as artifacts_module
import repro.runner.service as service_module
from repro.core import scaling as scaling_module
from repro.nn import PrecisionSearch
from repro.nn.quantization import quantization_scale, quantize
from repro.runner import ExperimentRunner, ResultCache
from repro.runner.artifacts import (
    ArtifactEntry,
    ArtifactStore,
    activated,
    active_store,
    artifact_key,
    canonical_params_json,
    load_producer,
    load_stats,
    record_stats,
    reset_stats,
    resolve_artifact,
    StoreStats,
)
from repro.runner.cli import main
from repro.runner.fingerprint import code_fingerprint, module_closure
from repro.runner.registry import build_registry

#: Reduced characterization workload shared by the reuse tests.
CHAR_PARAMS = {"samples": 40, "seed": 11}


def _entry(payload, *, artifact="unit", params=None):
    return ArtifactEntry(
        artifact=artifact,
        params=dict(params or {}),
        fingerprint="f" * 64,
        payload=payload,
        elapsed_seconds=0.25,
    )


class TestArtifactStore:
    def test_put_get_round_trip_preserves_numpy_payloads(self, tmp_path):
        store = ArtifactStore(tmp_path)
        payload = {"values": np.linspace(0.0, 1.0, 17), "count": 3}
        key = artifact_key("unit", {"a": 1}, "f" * 64)
        store.put(key, _entry(payload, params={"a": 1}))
        loaded = store.get("unit", key)
        assert loaded is not None
        assert loaded.params == {"a": 1}
        assert loaded.elapsed_seconds == 0.25
        np.testing.assert_array_equal(loaded.payload["values"], payload["values"])
        assert loaded.payload["values"].tobytes() == payload["values"].tobytes()

    def test_missing_and_corrupt_entries_are_misses(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "0" * 64
        assert store.get("unit", key) is None
        path = tmp_path / "unit" / f"{key}.pkl"
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert store.get("unit", key) is None
        # The corrupt entry is quarantined aside, so the next probe is a
        # clean miss and the producer recomputes into a fresh entry.
        assert not path.exists()
        assert (tmp_path / "corrupt" / "unit" / f"{key}.pkl").exists()
        drained = store.drain_stats()
        assert drained["corrupt"] == 1 and drained["quarantined"] == 1
        assert not store.exists("unit", key)

    def test_wrong_schema_version_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "1" * 64
        store.put(key, _entry("payload"))
        import pickle

        path = tmp_path / "unit" / f"{key}.pkl"
        document = pickle.loads(path.read_bytes())
        document["schema"] = -1
        path.write_bytes(pickle.dumps(document))
        assert store.get("unit", key) is None

    def test_invalid_artifact_names_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for bad in ("", ".", "..", "a/b", "../escape"):
            with pytest.raises(ValueError):
                store.get(bad, "0" * 64)

    def test_ls_and_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("k1" * 32, _entry(1, artifact="alpha"))
        store.put("k2" * 32, _entry(2, artifact="beta"))
        listing = store.ls()
        assert [row["artifact"] for row in listing] == ["alpha", "beta"]
        assert all(row["size_bytes"] > 0 for row in listing)
        assert store.clear("alpha") == 1
        assert [row["artifact"] for row in store.ls()] == ["beta"]
        assert store.clear() == 1
        assert store.ls() == []


class TestKeys:
    def test_canonical_params_json_sorts_and_unpacks_tuples(self):
        assert (
            canonical_params_json({"b": (1, 2), "a": 3})
            == '{"a":3,"b":[1,2]}'
        )

    def test_key_sensitivity(self):
        base = artifact_key("char", {"samples": 10}, "a" * 64)
        assert base == artifact_key("char", {"samples": 10}, "a" * 64)
        assert base != artifact_key("char2", {"samples": 10}, "a" * 64)
        assert base != artifact_key("char", {"samples": 11}, "a" * 64)
        assert base != artifact_key("char", {"samples": 10}, "b" * 64)

    def test_load_producer_validates(self):
        assert callable(load_producer("repro.core.scaling:characterization_artifact"))
        with pytest.raises(ValueError):
            load_producer("repro.core.scaling")
        with pytest.raises(TypeError):
            load_producer("repro.core.scaling:PAPER_NODE")


class TestResolve:
    def test_no_store_computes_inline_every_time(self):
        calls = []

        def producer(*, x):
            calls.append(x)
            return x * 2

        assert active_store() is None
        assert resolve_artifact("demo", {"x": 3}, producer=producer) == 6
        assert resolve_artifact("demo", {"x": 3}, producer=producer) == 6
        assert calls == [3, 3]

    def test_store_computes_once_then_replays(self, tmp_path):
        calls = []

        def producer(*, x):
            calls.append(x)
            return {"doubled": np.arange(x, dtype=np.float64) * 2.0}

        store = ArtifactStore(tmp_path)
        with activated(store):
            first = resolve_artifact("demo", {"x": 5}, producer=producer)
            second = resolve_artifact("demo", {"x": 5}, producer=producer)
        assert calls == [5]
        assert first["doubled"].tobytes() == second["doubled"].tobytes()

    def test_env_variable_activates_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS_DIR", str(tmp_path))
        store = active_store()
        assert store is not None and store.root == tmp_path

    def test_activated_none_disables_env_store(self, tmp_path, monkeypatch):
        # Explicit no-reuse scopes must stay reuse-free even when the
        # environment opts into a store -- the serial no-reuse benchmark arm
        # and `use_artifacts=False` rely on this.
        monkeypatch.setenv("REPRO_ARTIFACTS_DIR", str(tmp_path))
        with activated(None):
            assert active_store() is None
        assert active_store() is not None  # env fallback restored after

    def test_stats_round_trip(self, tmp_path):
        empty = load_stats(tmp_path).to_document()
        assert set(empty) == set(StoreStats.FIELDS)
        assert all(value == 0 for value in empty.values())
        total = record_stats(tmp_path, StoreStats(result_hits=2, artifact_misses=1))
        total = record_stats(tmp_path, StoreStats(result_misses=1, artifact_hits=4))
        assert total.result_hits == 2 and total.result_misses == 1
        assert total.artifact_hits == 4 and total.artifact_misses == 1
        assert load_stats(tmp_path).artifact_hits == 4
        reset_stats(tmp_path)
        assert load_stats(tmp_path).result_hits == 0


class TestRegistryArtifacts:
    def test_characterization_consumers_declare_shared_artifact(self):
        registry = build_registry()
        for name in ("table1", "fig2", "fig3"):
            binding = registry[name].artifacts["multiplier_characterization"]
            assert binding.producer == "repro.core.scaling:characterization_artifact"
            assert binding.params == ("samples", "seed")
            assert binding.level == 0

    def test_fig6_declares_two_wave_dag(self):
        registry = build_registry()
        bindings = registry["fig6"].artifacts
        assert bindings["lenet_state"].level == 0
        assert bindings["fig6_lenet_profile"].level == 1
        assert bindings["fig6_lenet_profile"].after == ("lenet_state",)
        assert bindings["fig6_alexnet_profile"].level == 0

    def test_table3_artifact_gated_on_from_substrate(self):
        registry = build_registry()
        binding = registry["table3"].artifacts["table3_substrate_workloads"]
        assert binding.when == "from_substrate"

    def test_plan_dedupes_shared_units_and_honours_when(self, tmp_path):
        runner = ExperimentRunner(cache=ResultCache(tmp_path))
        cold = [
            ("table1", runner.spec("table1").canonical_config(CHAR_PARAMS)),
            ("fig2", runner.spec("fig2").canonical_config(CHAR_PARAMS)),
            ("fig3", runner.spec("fig3").canonical_config({**CHAR_PARAMS, "rmse_samples": 50})),
            ("table3", runner.spec("table3").canonical_config({})),  # from_substrate=False
        ]
        units = runner._plan_artifacts(cold)
        assert [unit.artifact for unit in units] == ["multiplier_characterization"]
        assert dict(units[0].params) == {"samples": 40, "seed": 11}

    def test_declaration_errors(self, tmp_path):
        import types

        from repro.runner.registry import ExperimentSpec

        def make(name, artifacts):
            module = types.ModuleType(f"fake_{name}")
            module.PARAMS = {"samples": 10, "flag": False}
            module.ARTIFACTS = artifacts
            module.run = lambda *, samples=10, flag=False: []
            module.render = lambda rows: ""
            return module

        with pytest.raises(TypeError, match="unknown option"):
            ExperimentSpec.from_module(
                "bad",
                make("opt", {"a": ("repro.core.scaling:characterization_artifact", ("samples",), {"shards": 2})}),
            )
        with pytest.raises(TypeError, match="undeclared parameter"):
            ExperimentSpec.from_module(
                "bad",
                make("par", {"a": ("repro.core.scaling:characterization_artifact", ("missing",))}),
            )
        with pytest.raises(TypeError, match="'when' must name a bool"):
            ExperimentSpec.from_module(
                "bad",
                make(
                    "when",
                    {"a": ("repro.core.scaling:characterization_artifact", ("samples",), {"when": "samples"})},
                ),
            )
        with pytest.raises(TypeError, match="cycle"):
            ExperimentSpec.from_module(
                "bad",
                make(
                    "cycle",
                    {
                        "a": ("repro.core.scaling:characterization_artifact", (), {"after": ("b",)}),
                        "b": ("repro.core.scaling:characterization_artifact", (), {"after": ("a",)}),
                    },
                ),
            )


#: The three consumers of the shared characterization, reduced workload.
CHAR_REQUESTS = [
    ("table1", dict(CHAR_PARAMS)),
    ("fig2", dict(CHAR_PARAMS)),
    ("fig3", {**CHAR_PARAMS, "rmse_samples": 50}),
]


class TestColdRunReuse:
    def _counting(self, monkeypatch):
        calls = []
        real = scaling_module.characterize_multiplier

        def counting(*args, **kwargs):
            calls.append(kwargs.get("samples"))
            return real(*args, **kwargs)

        monkeypatch.setattr(scaling_module, "characterize_multiplier", counting)
        return calls

    def test_characterize_runs_exactly_once_per_cold_batch(self, tmp_path, monkeypatch):
        calls = self._counting(monkeypatch)
        runner = ExperimentRunner(cache=ResultCache(tmp_path))
        reports = runner.run_many([(n, dict(c)) for n, c in CHAR_REQUESTS], jobs=1)
        assert len(reports) == 3 and not any(r.cached for r in reports)
        assert calls == [40]
        # The shared artifact is in the store, and the stats recorded the
        # three consumer requests as one miss (the deduplicated unit).
        assert [row["artifact"] for row in runner.artifacts.ls()] == [
            "multiplier_characterization"
        ]
        stats = load_stats(runner.cache.root)
        assert stats.artifact_misses == 1 and stats.result_misses == 3

    def test_characterization_artifact_not_consumed_by_other_experiments(self):
        registry = build_registry()
        consumers = sorted(
            name
            for name, spec in registry.items()
            if "multiplier_characterization" in spec.artifacts
        )
        assert consumers == ["fig2", "fig3", "table1"]

    def test_rows_bit_identical_to_serial_no_reuse(self, tmp_path):
        no_reuse = ExperimentRunner(
            cache=ResultCache(tmp_path / "a"), use_cache=False, use_artifacts=False
        )
        graph = ExperimentRunner(cache=ResultCache(tmp_path / "b"))
        serial = no_reuse.run_many([(n, dict(c)) for n, c in CHAR_REQUESTS], jobs=1)
        reused = graph.run_many([(n, dict(c)) for n, c in CHAR_REQUESTS], jobs=1)
        assert json.dumps([r.rows for r in serial]) == json.dumps([r.rows for r in reused])

    def test_parallel_cold_run_matches_serial_byte_for_byte(self, tmp_path):
        serial = ExperimentRunner(cache=ResultCache(tmp_path / "a")).run_many(
            [(n, dict(c)) for n, c in CHAR_REQUESTS], jobs=1
        )
        parallel = ExperimentRunner(cache=ResultCache(tmp_path / "b")).run_many(
            [(n, dict(c)) for n, c in CHAR_REQUESTS], jobs=2
        )
        assert json.dumps([r.rows for r in serial]) == json.dumps([r.rows for r in parallel])

    def test_artifact_replay_is_bit_identical(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        with activated(store):
            live = scaling_module.resolve_characterization(**CHAR_PARAMS)
            replayed = scaling_module.resolve_characterization(**CHAR_PARAMS)
        for mode in ("das", "dvafs"):
            live_table = live.relative_activity(mode)
            replay_table = replayed.relative_activity(mode)
            assert live_table == replay_table

    def test_warm_second_batch_hits_results_and_artifacts(self, tmp_path):
        runner = ExperimentRunner(cache=ResultCache(tmp_path))
        runner.run_many([(n, dict(c)) for n, c in CHAR_REQUESTS], jobs=1)
        warm = runner.run_many([(n, dict(c)) for n, c in CHAR_REQUESTS], jobs=1)
        assert all(report.cached for report in warm)
        stats = load_stats(runner.cache.root)
        assert stats.result_hits == 3


class TestInvalidationChain:
    def _simulate_scaling_edit(self, monkeypatch):
        """Fingerprints as if ``repro.core.scaling``'s source changed.

        Modules whose static import closure includes the multiplier model get
        a salted fingerprint; everything else keeps its real one -- exactly
        the effect of editing the file, without touching the tree.
        """

        def edited(module_name, *, root="repro"):
            digest = code_fingerprint(module_name, root=root)
            if "repro.core.scaling" in module_closure(module_name, root=root):
                return hashlib.sha256((digest + ":edited").encode()).hexdigest()
            return digest

        monkeypatch.setattr(service_module, "code_fingerprint", edited)
        monkeypatch.setattr(artifacts_module, "code_fingerprint", edited)

    def test_scaling_edit_invalidates_characterization_chain_only(
        self, tmp_path, monkeypatch
    ):
        runner = ExperimentRunner(cache=ResultCache(tmp_path))
        requests = [*CHAR_REQUESTS, ("fig4", {"input_length": 24, "taps": 5}), ("fig8", {})]
        cold = runner.run_many([(n, dict(c)) for n, c in requests], jobs=1)
        assert not any(report.cached for report in cold)
        artifact_keys_before = {key for key, _ in runner.artifacts.entries()}

        self._simulate_scaling_edit(monkeypatch)
        after = runner.run_many([(n, dict(c)) for n, c in requests], jobs=1)
        by_name = {report.name: report for report in after}
        # The characterization consumers recompute...
        for name in ("table1", "fig2", "fig3"):
            assert by_name[name].cached is False, name
        # ...while experiments that never touch the multiplier model survive.
        for name in ("fig4", "fig8"):
            assert by_name[name].cached is True, name
        # The characterization artifact was re-produced under a new key; the
        # old entry still exists (content addresses never collide).
        artifact_keys_after = {key for key, _ in runner.artifacts.entries()}
        assert artifact_keys_before < artifact_keys_after
        assert len(artifact_keys_after) == 2 * len(artifact_keys_before)

    def test_fig6_and_fig8_closures_exclude_multiplier_model(self):
        # Closure-level proof that editing core/scaling.py cannot invalidate
        # the trained-network artifacts or the fig6/fig8 result entries.
        for module in (
            "repro.experiments.fig6",
            "repro.experiments.fig8",
            "repro.nn.training",
        ):
            assert "repro.core.scaling" not in module_closure(module), module

    def test_scaling_closure_reaches_characterization_consumers(self):
        for module in ("repro.experiments.table1", "repro.experiments.fig2", "repro.experiments.fig3"):
            assert "repro.core.scaling" in module_closure(module), module


class TestIncrementalSearch:
    def test_lenet_profile_matches_reference(self, trained_lenet, digit_dataset):
        network, _history = trained_lenet
        reference = PrecisionSearch(
            network, digit_dataset.test_images[:24], labels=digit_dataset.test_labels[:24]
        )
        incremental = PrecisionSearch(
            network, digit_dataset.test_images[:24], labels=digit_dataset.test_labels[:24]
        )
        assert reference.profile() == incremental.profile(incremental=True)

    def test_agreement_mode_profile_matches_reference(self):
        # Small conv net in agreement mode (labels=None): the mode the
        # AlexNet stand-in runs under.
        from repro.nn.layers import Conv2D, Flatten, FullyConnected, MaxPool2D, ReLU
        from repro.nn.network import Network

        rng = np.random.default_rng(3)
        network = Network(
            [
                Conv2D(2, 6, 3, padding=1, name="c1", rng=rng),
                ReLU(name="r1"),
                MaxPool2D(2, name="p1"),
                Conv2D(6, 8, 3, name="c2", rng=rng),
                ReLU(name="r2"),
                Flatten(name="flat"),
                FullyConnected(8 * 4 * 4, 10, name="fc", rng=rng),
            ],
            (2, 12, 12),
        )
        samples = np.random.default_rng(7).uniform(-1.0, 1.0, size=(6, 2, 12, 12))
        reference = PrecisionSearch(network, samples, candidate_bits=(1, 2, 4, 6, 8, 16))
        incremental = PrecisionSearch(network, samples, candidate_bits=(1, 2, 4, 6, 8, 16))
        assert reference.profile() == incremental.profile(incremental=True)

    def test_relative_accuracy_incremental_equivalence(self, trained_lenet, digit_dataset):
        from repro.nn.quantization import QuantizationConfig

        network, _history = trained_lenet
        search = PrecisionSearch(
            network, digit_dataset.test_images[:16], labels=digit_dataset.test_labels[:16]
        )
        for layer in network.weighted_layers():
            for config in (
                QuantizationConfig(weight_bits=3),
                QuantizationConfig(activation_bits=5),
            ):
                assert search.relative_accuracy_incremental(
                    layer.name, config
                ) == search.relative_accuracy({layer.name: config})

    def test_probe_restores_weights(self, trained_lenet, digit_dataset):
        network, _history = trained_lenet
        search = PrecisionSearch(
            network, digit_dataset.test_images[:8], labels=digit_dataset.test_labels[:8]
        )
        layer = network.weighted_layers()[0]
        before = layer.weights.copy()
        search.minimum_bits_for_layer(layer.name, target="weights", incremental=True)
        np.testing.assert_array_equal(layer.weights, before)


class TestFig6ArtifactPath:
    def test_lenet_rows_artifact_path_matches_reference(self, tmp_path):
        from repro.experiments.fig6 import run_lenet

        small = dict(
            train_samples=60, test_samples=20, image_size=16, epochs=1,
            evaluation_samples=8, seed=5,
        )
        reference_rows = run_lenet(**small)  # no store: reference search
        store = ArtifactStore(tmp_path)
        with activated(store):
            cold_rows = run_lenet(**small)  # produces lenet_state + profile
            warm_rows = run_lenet(**small)  # replays both artifacts
        assert json.dumps(cold_rows) == json.dumps(reference_rows)
        assert json.dumps(warm_rows) == json.dumps(reference_rows)
        assert {row["artifact"] for row in store.ls()} == {
            "lenet_state",
            "fig6_lenet_profile",
        }

    def test_alexnet_rows_artifact_path_matches_reference(self, tmp_path, monkeypatch):
        # Swap the AlexNet stand-in for a tiny conv net so the full
        # store-vs-reference equivalence runs in milliseconds.
        from repro.experiments import fig6
        from repro.nn.layers import Conv2D, Flatten, FullyConnected, ReLU
        from repro.nn.network import Network

        def tiny_alexnet(*, input_size, num_classes, seed):
            rng = np.random.default_rng(seed)
            return Network(
                [
                    Conv2D(3, 4, 3, name="conv1", rng=rng),
                    ReLU(name="relu1"),
                    Flatten(name="flat"),
                    FullyConnected(4 * (input_size - 2) ** 2, num_classes, name="fc", rng=rng),
                ],
                (3, input_size, input_size),
            )

        monkeypatch.setattr(fig6, "alexnet", tiny_alexnet)
        reference_rows = fig6.run_alexnet(input_size=16, seed=3)
        store = ArtifactStore(tmp_path)
        with activated(store):
            cold_rows = fig6.run_alexnet(input_size=16, seed=3)
            warm_rows = fig6.run_alexnet(input_size=16, seed=3)
        assert json.dumps(cold_rows) == json.dumps(reference_rows)
        assert json.dumps(warm_rows) == json.dumps(reference_rows)
        assert [row["artifact"] for row in store.ls()] == ["fig6_alexnet_profile"]

    def test_non_default_evaluation_samples_bypass_the_store(self, tmp_path, monkeypatch):
        from repro.experiments import fig6
        from repro.nn.layers import Flatten, FullyConnected
        from repro.nn.network import Network

        def tiny_alexnet(*, input_size, num_classes, seed):
            rng = np.random.default_rng(seed)
            return Network(
                [
                    Flatten(name="flat"),
                    FullyConnected(3 * input_size * input_size, num_classes, name="fc", rng=rng),
                ],
                (3, input_size, input_size),
            )

        monkeypatch.setattr(fig6, "alexnet", tiny_alexnet)
        store = ArtifactStore(tmp_path)
        with activated(store):
            fig6.resolve_alexnet_profiles(input_size=16, seed=3, evaluation_samples=5)
        assert store.ls() == []


class TestQuantizeFastPaths:
    def test_precomputed_scale_matches(self):
        rng = np.random.default_rng(0)
        tensor = rng.normal(0.0, 0.3, size=(64, 33))
        for bits in (2, 3, 5, 8, 12, 16):
            scale = quantization_scale(tensor, bits)
            baseline = quantize(tensor, bits)
            assert quantize(tensor, bits, scale=scale).tobytes() == baseline.tobytes()

    def test_out_buffer_reuse_matches(self):
        rng = np.random.default_rng(1)
        tensor = rng.normal(0.0, 1.5, size=(128, 17))
        scratch = np.empty_like(tensor)
        for bits in (2, 4, 7, 16, 1):
            baseline = quantize(tensor, bits)
            result = quantize(tensor, bits, out=scratch)
            assert result.tobytes() == baseline.tobytes()

    def test_max_abs_hint_matches(self):
        rng = np.random.default_rng(2)
        tensor = rng.normal(0.0, 2.0, size=257)
        max_abs = float(np.max(np.abs(tensor)))
        for bits in (2, 6, 16):
            assert quantization_scale(tensor, bits, max_abs=max_abs) == quantization_scale(
                tensor, bits
            )

    def test_denormal_values_keep_error_bound(self):
        # Regression: 5e-324 used to underflow the scale to zero.
        for value in (5e-324, -5e-324, 1e-310):
            tensor = np.array([value])
            for bits in (2, 3, 8):
                scale = quantization_scale(tensor, bits)
                assert scale > 0.0
                error = float(np.max(np.abs(quantize(tensor, bits) - tensor)))
                assert error <= scale * (1.0 + 1e-9)


class TestCliStats:
    def _stats(self, tmp_path, capsys):
        assert main(["cache", "stats", "--json", "--cache-dir", str(tmp_path)]) == 0
        return json.loads(capsys.readouterr().out)

    EMPTY_SECTION = {
        "entries": 0,
        "bytes": 0,
        "hits": 0,
        "misses": 0,
        "corrupt": 0,
        "claims": 0,
        "claim_waits": 0,
        "evictions": 0,
        "evicted_bytes": 0,
        "quarantine": {"entries": 0, "bytes": 0},
    }

    def test_stats_round_trip_and_clear_resets(self, tmp_path, capsys):
        summary = self._stats(tmp_path, capsys)
        assert summary["results"] == self.EMPTY_SECTION

        assert (
            main(
                [
                    "run",
                    "table1",
                    "--param",
                    "samples=40",
                    "--param",
                    "seed=11",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        summary = self._stats(tmp_path, capsys)
        assert summary["results"]["entries"] == 1
        assert summary["results"]["misses"] == 1
        assert summary["artifacts"]["entries"] == 1
        assert summary["artifacts"]["misses"] == 1
        assert summary["results"]["bytes"] > 0 and summary["artifacts"]["bytes"] > 0

        # A warm re-run records hits.
        assert (
            main(
                [
                    "run",
                    "table1",
                    "--param",
                    "samples=40",
                    "--param",
                    "seed=11",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        summary = self._stats(tmp_path, capsys)
        assert summary["results"]["hits"] == 1

        # Full clear removes results + artifacts and resets the counters.
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        summary = self._stats(tmp_path, capsys)
        assert summary["results"] == self.EMPTY_SECTION
        assert summary["artifacts"] == self.EMPTY_SECTION
        assert summary["recovery"] == {"quarantined": 0, "retried": 0, "claim_wait_timeouts": 0}

    def test_cache_ls_lists_artifacts(self, tmp_path, capsys):
        main(
            [
                "run",
                "fig2",
                "--param",
                "samples=40",
                "--param",
                "seed=11",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        capsys.readouterr()
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "result cache" in output
        assert "artifact store" in output
        assert "multiplier_characterization" in output
