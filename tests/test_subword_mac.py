"""Unit tests for the subword-parallel DVAFS multiplier and the MAC unit."""

import numpy as np
import pytest

from repro.arithmetic.mac import MacUnit
from repro.arithmetic.subword import SubwordMode, SubwordParallelMultiplier


class TestSubwordModes:
    def test_supported_modes_of_16bit(self):
        multiplier = SubwordParallelMultiplier(16)
        labels = [str(mode) for mode in multiplier.supported_modes()]
        assert labels == ["1x16b", "2x8b", "4x4b", "8x2b"]

    def test_set_precision_selects_parallelism(self):
        multiplier = SubwordParallelMultiplier(16)
        assert multiplier.set_precision(16).parallelism == 1
        assert multiplier.set_precision(8).parallelism == 2
        assert multiplier.set_precision(4).parallelism == 4
        # 12 does not divide 16: falls back to a gated single lane (N = 1).
        assert multiplier.set_precision(12).parallelism == 1

    def test_mode_that_does_not_fit_rejected(self):
        multiplier = SubwordParallelMultiplier(16)
        with pytest.raises(ValueError):
            multiplier.set_mode(4, 8)

    def test_subword_mode_validation(self):
        with pytest.raises(ValueError):
            SubwordMode(parallelism=0, subword_bits=4)


class TestSubwordCorrectness:
    def test_products_exact_in_every_mode(self):
        rng = np.random.default_rng(0)
        multiplier = SubwordParallelMultiplier(16)
        for precision in (16, 8, 4):
            mode = multiplier.set_precision(precision)
            lo, hi = -(1 << (precision - 1)), (1 << (precision - 1)) - 1
            for _ in range(30):
                xs = [int(v) for v in rng.integers(lo, hi + 1, mode.parallelism)]
                ys = [int(v) for v in rng.integers(lo, hi + 1, mode.parallelism)]
                assert multiplier.multiply(xs, ys) == [a * b for a, b in zip(xs, ys)]

    def test_packed_interface(self):
        multiplier = SubwordParallelMultiplier(16)
        multiplier.set_precision(4)
        from repro.arithmetic.fixed_point import pack_subwords, unpack_subwords

        xs, ys = [1, -2, 3, -4], [5, 6, -7, 7]
        packed = multiplier.multiply_packed(pack_subwords(xs, 4), pack_subwords(ys, 4))
        assert unpack_subwords(packed, 8, 4) == [a * b for a, b in zip(xs, ys)]

    def test_wrong_operand_count_rejected(self):
        multiplier = SubwordParallelMultiplier(16)
        multiplier.set_precision(4)
        with pytest.raises(ValueError):
            multiplier.multiply([1, 2], [3, 4])

    def test_stream_length_must_match_parallelism(self):
        multiplier = SubwordParallelMultiplier(16)
        multiplier.set_precision(8)
        with pytest.raises(ValueError):
            multiplier.multiply_stream([1, 2, 3], [1, 2, 3])


class TestSubwordActivityAndTiming:
    def test_full_precision_overhead(self):
        """The reconfigurable multiplier costs ~21 % extra at 16 b (Fig. 3a)."""
        rng = np.random.default_rng(1)
        xs = [int(v) for v in rng.integers(-32768, 32768, 100)]
        ys = [int(v) for v in rng.integers(-32768, 32768, 100)]

        from repro.arithmetic.multiplier import BoothWallaceMultiplier

        plain = BoothWallaceMultiplier(16)
        plain.multiply_stream(xs, ys)
        dvafs = SubwordParallelMultiplier(16, reconfiguration_overhead=0.21)
        dvafs.set_precision(16)
        dvafs.multiply_stream(xs, ys)

        overhead = dvafs.activity.toggles_per_word / plain.activity.toggles_per_word
        assert overhead == pytest.approx(1.21, rel=0.02)

    def test_critical_path_shrinks_with_subword_mode(self):
        multiplier = SubwordParallelMultiplier(16)
        full = multiplier.critical_path_levels(SubwordMode(1, 16))
        quad = multiplier.critical_path_levels(SubwordMode(4, 4))
        assert quad < full / 1.5

    def test_current_mode_honours_gated_precision(self):
        multiplier = SubwordParallelMultiplier(16)
        multiplier.set_precision(12)
        gated = multiplier.critical_path_levels()
        multiplier.set_precision(16)
        full = multiplier.critical_path_levels()
        assert gated < full

    def test_per_word_activity_drops_in_subword_mode(self):
        rng = np.random.default_rng(2)
        multiplier = SubwordParallelMultiplier(16)
        multiplier.set_precision(16)
        xs = [int(v) for v in rng.integers(-32768, 32768, 80)]
        multiplier.multiply_stream(xs, xs)
        per_word_16 = multiplier.activity.toggles_per_word

        multiplier = SubwordParallelMultiplier(16)
        multiplier.set_precision(4)
        xs4 = [int(v) for v in rng.integers(-8, 8, 80)]
        multiplier.multiply_stream(xs4, xs4)
        per_word_4 = multiplier.activity.toggles_per_word
        assert per_word_4 < per_word_16 / 3


class TestMacUnit:
    def test_dot_product_matches_numpy(self):
        mac = MacUnit(16)
        mac.set_precision(16)
        rng = np.random.default_rng(3)
        xs = [int(v) for v in rng.integers(-2000, 2000, 32)]
        ys = [int(v) for v in rng.integers(-2000, 2000, 32)]
        result = mac.dot_product(xs, ys)
        assert result[0] == int(np.dot(xs, ys))

    def test_subword_dot_product(self):
        mac = MacUnit(16)
        mac.set_precision(4)
        xs = [1, 2, 3, 4, -1, -2, -3, -4]
        ys = [7, 6, 5, 4, 3, 2, 1, 0]
        accumulators = mac.dot_product(xs, ys)
        # Lane l accumulates elements l, l+4, l+8, ... of the stream.
        for lane in range(4):
            expected = sum(xs[i] * ys[i] for i in range(lane, len(xs), 4))
            assert accumulators[lane] == expected

    def test_guarding_skips_zero_operands(self):
        mac = MacUnit(16, guard_zero_operands=True)
        mac.set_precision(16)
        mac.dot_product([0, 5, 0, 7], [3, 0, 9, 2])
        assert mac.statistics.guarded == 3
        assert mac.statistics.guard_rate == pytest.approx(0.75)

    def test_guarded_stream_uses_less_energy(self):
        rng = np.random.default_rng(4)
        dense_x = [int(v) for v in rng.integers(-100, 100, 64)]
        dense_y = [int(v) for v in rng.integers(-100, 100, 64)]
        sparse_x = [v if i % 4 == 0 else 0 for i, v in enumerate(dense_x)]

        dense_mac = MacUnit(16)
        dense_mac.dot_product(dense_x, dense_y)
        sparse_mac = MacUnit(16)
        sparse_mac.dot_product(sparse_x, dense_y)
        assert (
            sparse_mac.activity.total_weighted_toggles
            < dense_mac.activity.total_weighted_toggles
        )

    def test_accumulator_width_validation(self):
        with pytest.raises(ValueError):
            MacUnit(16, accumulator_bits=16)
