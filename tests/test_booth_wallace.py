"""Unit tests for Booth recoding and Wallace-tree reduction."""

import numpy as np
import pytest

from repro.arithmetic.booth import (
    booth_decode,
    booth_digit_count,
    booth_recode,
    digit_to_code,
    generate_partial_products,
)
from repro.arithmetic.wallace import reduce_rows, wallace_levels


class TestBoothRecode:
    def test_digit_count(self):
        assert booth_digit_count(16) == 8
        assert booth_digit_count(8) == 4
        assert booth_digit_count(4) == 2

    def test_roundtrip_exhaustive_8bit(self):
        for value in range(-128, 128):
            digits = booth_recode(value, 8)
            assert booth_decode(digits) == value
            assert all(d in (-2, -1, 0, 1, 2) for d in digits)

    def test_roundtrip_random_16bit(self):
        rng = np.random.default_rng(3)
        for value in rng.integers(-32768, 32768, 200):
            assert booth_decode(booth_recode(int(value), 16)) == int(value)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            booth_recode(300, 8)

    def test_digit_code_distinct(self):
        codes = {digit_to_code(d) for d in (-2, -1, 0, 1, 2)}
        assert len(codes) == 5

    def test_invalid_digit_code(self):
        with pytest.raises(ValueError):
            digit_to_code(3)


class TestPartialProducts:
    def test_sum_equals_product(self):
        rng = np.random.default_rng(4)
        for _ in range(100):
            x = int(rng.integers(-32768, 32768))
            y = int(rng.integers(-32768, 32768))
            pps = generate_partial_products(x, y, 16)
            assert sum(pp.value for pp in pps) == x * y

    def test_zero_multiplier_gives_zero_rows(self):
        pps = generate_partial_products(12345, 0, 16)
        assert all(pp.value == 0 for pp in pps)


class TestWallaceLevels:
    def test_known_values(self):
        assert wallace_levels(2) == 0
        assert wallace_levels(3) == 1
        assert wallace_levels(4) == 2
        assert wallace_levels(8) == 4

    def test_monotonic(self):
        levels = [wallace_levels(rows) for rows in range(2, 30)]
        assert levels == sorted(levels)

    def test_invalid(self):
        with pytest.raises(ValueError):
            wallace_levels(0)


class TestReduceRows:
    def test_reduction_preserves_sum_mod_2n(self):
        rng = np.random.default_rng(5)
        bits = 32
        mask = (1 << bits) - 1
        for _ in range(50):
            rows = [int(v) for v in rng.integers(0, 1 << 31, size=7)]
            result = reduce_rows(rows, bits)
            assert (result.sum_row + result.carry_row) & mask == sum(rows) & mask

    def test_depth_matches_wallace_levels(self):
        rows = [1] * 8
        result = reduce_rows(rows, 16)
        assert result.depth == wallace_levels(8)

    def test_single_row_passthrough(self):
        result = reduce_rows([42], 16)
        assert result.sum_row + result.carry_row == 42

    def test_empty_rows(self):
        result = reduce_rows([], 16)
        assert result.sum_row == 0 and result.carry_row == 0
