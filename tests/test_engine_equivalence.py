"""Differential suite: trace-compiled engine vs the cycle-level interpreter.

The interpreter (:meth:`SimdProcessor.run`) is the golden reference; every
test runs the same program on two identically-prepared processors -- one
through the interpreter, one through :class:`TraceEngine` -- and demands
*bit-identical* outcomes: execution counters, opcode histograms, memory
contents and access counters, vector-unit counters (including the
data-dependent zero-operand guard counts), architectural register state and
register-file access counts.  Programs the engine cannot vectorise must fall
back to interpretation and still satisfy the same property.
"""

from dataclasses import asdict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simd import (
    ExecutionError,
    Opcode,
    SimdProcessor,
    TraceEngine,
    analyze_program,
    assemble,
    basic_blocks,
    convolution_kernel,
    run_convolution,
)

INPUT_BASE = 0
INPUT_WORDS = 64
WEIGHT_BASE = 100
OUTPUT_BASE = 200


def _prepare(simd_width: int, precision: int, preload: np.ndarray, *, guard: bool = True):
    processor = SimdProcessor(simd_width, guard_zero_operands=guard)
    if precision != 16:
        processor.set_precision(precision)
    for bank in range(simd_width):
        processor.memory.load_bank(bank, INPUT_BASE, preload[bank])
    return processor


def _assert_identical(interpreter, engine, expected, result):
    assert asdict(result.counters) == asdict(expected.counters)
    assert (result.halted, result.precision_bits, result.parallelism, result.lanes) == (
        expected.halted,
        expected.precision_bits,
        expected.parallelism,
        expected.lanes,
    )
    assert np.array_equal(engine.memory._storage, interpreter.memory._storage)
    assert asdict(engine.memory.counters) == asdict(interpreter.memory.counters)
    assert asdict(engine.vector_unit.counters) == asdict(interpreter.vector_unit.counters)
    assert engine.scalar_registers.dump() == interpreter.scalar_registers.dump()
    assert np.array_equal(
        engine.vector_registers._registers, interpreter.vector_registers._registers
    )
    assert np.array_equal(
        engine.vector_registers.accumulators, interpreter.vector_registers.accumulators
    )
    assert (engine.scalar_registers.reads, engine.scalar_registers.writes) == (
        interpreter.scalar_registers.reads,
        interpreter.scalar_registers.writes,
    )
    assert (engine.vector_registers.reads, engine.vector_registers.writes) == (
        interpreter.vector_registers.reads,
        interpreter.vector_registers.writes,
    )


def run_differential(
    source: str,
    *,
    simd_width: int = 4,
    precision: int = 16,
    preload: np.ndarray | None = None,
    max_cycles: int = 2_000_000,
    guard: bool = True,
):
    """Run ``source`` on interpreter and engine; assert bit-identical state."""
    program = assemble(source)
    if preload is None:
        preload = np.zeros((simd_width, INPUT_WORDS), dtype=np.int64)
    interpreter = _prepare(simd_width, precision, preload, guard=guard)
    engine_host = _prepare(simd_width, precision, preload, guard=guard)
    expected = interpreter.run(program, max_cycles=max_cycles)
    result = TraceEngine(engine_host).run(program, max_cycles=max_cycles)
    _assert_identical(interpreter, engine_host, expected, result)
    return program, expected


# -- randomized loop programs -------------------------------------------------


@st.composite
def loop_programs(draw):
    """A random (source, simd_width, precision, preload) loop program.

    The generator biases toward analyzable affine loops (loads/stores off the
    induction register, MAC/ALU mixes, optional VCLR/VSTACC) but can also
    inject constructs the engine must refuse -- extra scalar writes, a second
    induction update, colliding stores -- exercising the interpreter fallback
    under the same differential property.
    """
    simd_width = draw(st.sampled_from([2, 8, 64]))
    precision = draw(st.sampled_from([16, 8, 4]))
    iterations = draw(st.integers(min_value=1, max_value=6))
    step = draw(st.sampled_from([1, 2]))
    use_bne = draw(st.booleans())
    sparsity = draw(st.sampled_from([0.0, 0.5]))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))

    rng = np.random.default_rng(seed)
    preload = rng.integers(-(1 << 15), 1 << 15, size=(simd_width, INPUT_WORDS))
    preload[rng.random(size=preload.shape) < sparsity] = 0

    lines = [
        "    li r1, 0",
        f"    li r3, {iterations * step}",
        f"    li r2, {draw(st.integers(min_value=-40, max_value=40))}",
        "loop:",
    ]
    if draw(st.booleans()):
        lines.append("    vclr")
    written = []
    operation_count = draw(st.integers(min_value=2, max_value=7))
    stores = 0
    for _ in range(operation_count):
        kind = draw(
            st.sampled_from(
                ["vload", "vbcast", "vmac", "vmul", "vadd", "vrelu", "vstacc", "vstore"]
            )
        )
        if kind == "vload":
            register = draw(st.integers(min_value=0, max_value=5))
            base = draw(st.sampled_from(["r0", "r1"]))
            offset = draw(st.integers(min_value=0, max_value=INPUT_WORDS - 16))
            lines.append(f"    vload v{register}, {base}, {offset}")
            written.append(register)
        elif kind == "vbcast":
            register = draw(st.integers(min_value=0, max_value=5))
            lines.append(f"    vbcast v{register}, {draw(st.sampled_from(['r1', 'r2']))}")
            written.append(register)
        elif kind == "vmac":
            a = draw(st.integers(min_value=0, max_value=5))
            b = draw(st.integers(min_value=0, max_value=5))
            lines.append(f"    vmac v{a}, v{b}")
        elif kind in ("vmul", "vadd"):
            d = draw(st.integers(min_value=0, max_value=5))
            a = draw(st.integers(min_value=0, max_value=5))
            b = draw(st.integers(min_value=0, max_value=5))
            lines.append(f"    {kind} v{d}, v{a}, v{b}")
            written.append(d)
        elif kind == "vrelu":
            d = draw(st.integers(min_value=0, max_value=5))
            a = draw(st.integers(min_value=0, max_value=5))
            lines.append(f"    vrelu v{d}, v{a}")
            written.append(d)
        elif kind == "vstacc":
            d = draw(st.integers(min_value=0, max_value=5))
            lines.append(f"    vstacc v{d}")
            written.append(d)
        elif kind == "vstore":
            register = draw(st.sampled_from(written)) if written else 0
            lines.append(f"    vstore v{register}, r1, {OUTPUT_BASE + 16 * stores}")
            stores += 1
    poison = draw(st.sampled_from(["none", "none", "none", "scalar", "double-addi", "collision"]))
    if poison == "scalar":
        lines.append("    add r4, r1, r1")
    elif poison == "collision":
        lines.append(f"    vstore v{written[0] if written else 0}, r0, {OUTPUT_BASE + 90}")
        lines.append(f"    vstore v{written[0] if written else 0}, r0, {OUTPUT_BASE + 90}")
    lines.append(f"    addi r1, r1, {step}")
    if poison == "double-addi":
        lines.append("    addi r1, r1, 0")  # second write to the induction register
    lines.append(f"    {'bne' if use_bne else 'blt'} r1, r3, loop")
    lines.append("    halt")
    return "\n".join(lines) + "\n", simd_width, precision, preload


class TestRandomizedLoops:
    @settings(max_examples=60, deadline=None)
    @given(data=loop_programs())
    def test_engine_matches_interpreter(self, data):
        source, simd_width, precision, preload = data
        run_differential(
            source, simd_width=simd_width, precision=precision, preload=preload
        )

    @settings(max_examples=20, deadline=None)
    @given(data=loop_programs(), guard=st.booleans())
    def test_guarding_toggle(self, data, guard):
        source, simd_width, precision, preload = data
        run_differential(
            source, simd_width=simd_width, precision=precision, preload=preload, guard=guard
        )


class TestConvolutionWorkloads:
    @pytest.mark.parametrize("simd_width", [8, 64])
    @pytest.mark.parametrize("precision", [16, 8, 4])
    @pytest.mark.parametrize("sparsity", [0.0, 0.4])
    def test_generated_kernels(self, simd_width, precision, sparsity):
        workload = convolution_kernel(
            simd_width, input_length=24, taps=5, seed=13, sparsity=sparsity
        )
        interpreter = SimdProcessor(simd_width)
        interpreter.set_precision(precision)
        expected_outputs, expected = run_convolution(interpreter, workload, batch=False)
        engine_host = SimdProcessor(simd_width)
        engine_host.set_precision(precision)
        outputs, result = run_convolution(engine_host, workload, batch=True)
        assert np.array_equal(outputs, expected_outputs)
        _assert_identical(interpreter, engine_host, expected, result)

    def test_convolution_loop_is_vectorised(self):
        """The generated kernel's output loop must be found by the analysis
        (guarding against silently falling back to interpretation)."""
        workload = convolution_kernel(8, input_length=32, taps=5)
        traces = analyze_program(workload.program)
        assert len(traces) == 1
        (trace,) = traces.values()
        assert trace.compare is Opcode.BLT
        assert trace.step == 1
        assert Opcode.VMAC.value in trace.opcode_counts


class TestAccumulatorPaths:
    def test_carry_across_iterations_without_vclr(self):
        """No VCLR anywhere: VSTACC sees the cross-iteration running sum."""
        preload = np.arange(1, 4 * INPUT_WORDS + 1).reshape(4, INPUT_WORDS) % 97
        run_differential(
            """
            li r1, 0
            li r3, 6
            li r2, 3
            vbcast v1, r2
            loop:
            vload v0, r1, 0
            vmac v0, v1
            vstacc v2
            vstore v2, r1, 200
            addi r1, r1, 1
            blt r1, r3, loop
            halt
            """,
            preload=preload,
        )

    def test_entry_accumulators_with_trailing_vclr(self):
        """VSTACC before a later VCLR: only iteration 0 sees the pre-loop
        accumulator value, later iterations carry in zero."""
        preload = (np.arange(4 * INPUT_WORDS).reshape(4, INPUT_WORDS) * 7 - 300) % 251
        run_differential(
            """
            li r1, 0
            li r3, 5
            li r2, 11
            vbcast v1, r2
            vload v0, r0, 3
            vmac v0, v1              ; pre-loop accumulator carry-in
            loop:
            vload v0, r1, 4
            vmac v0, v1
            vstacc v2
            vstore v2, r1, 200
            vclr
            addi r1, r1, 1
            blt r1, r3, loop
            halt
            """,
            preload=preload,
        )

    def test_vclr_per_iteration(self):
        """The convolution shape: VCLR at the top of every iteration."""
        preload = np.arange(4 * INPUT_WORDS).reshape(4, INPUT_WORDS) % 89 - 44
        run_differential(
            """
            li r1, 0
            li r3, 7
            li r2, -5
            vbcast v1, r2
            loop:
            vclr
            vload v0, r1, 0
            vmac v0, v1
            vload v0, r1, 1
            vmac v0, v1
            vstacc v2
            vstore v2, r1, 210
            addi r1, r1, 1
            blt r1, r3, loop
            halt
            """,
            preload=preload,
        )


class TestInterpreterFallback:
    def test_loop_carried_memory_dependency(self):
        """A shift-register loop (stores feed next iteration's loads) aliases
        load and store ranges; vectorising it would be wrong, so the engine
        must interpret it -- and still match bit for bit."""
        preload = np.arange(1, 4 * INPUT_WORDS + 1).reshape(4, INPUT_WORDS) % 113
        program, _ = run_differential(
            """
            li r1, 0
            li r3, 8
            loop:
            vload v0, r1, 0
            vstore v0, r1, 1      ; overwrites the next iteration's input
            addi r1, r1, 1
            blt r1, r3, loop
            halt
            """,
            preload=preload,
        )
        assert analyze_program(program)  # analyzable statically ...
        # ... yet the runtime alias check must reject it (the differential
        # equality above proves the fallback executed).

    def test_store_store_collision_falls_back(self):
        run_differential(
            """
            li r1, 0
            li r3, 4
            loop:
            vload v0, r1, 0
            vstore v0, r0, 290
            vstore v0, r0, 290
            addi r1, r1, 1
            blt r1, r3, loop
            halt
            """,
            preload=np.arange(4 * INPUT_WORDS).reshape(4, INPUT_WORDS) % 61,
        )

    def test_scalar_body_writes_fall_back(self):
        run_differential(
            """
            li r1, 0
            li r3, 5
            loop:
            add r4, r1, r1
            vload v0, r4, 0
            vstore v0, r1, 220
            addi r1, r1, 1
            blt r1, r3, loop
            halt
            """,
            preload=np.arange(4 * INPUT_WORDS).reshape(4, INPUT_WORDS) % 31,
        )

    def test_nested_loops_vectorise_inner(self):
        """Outer loop is interpreted (it contains a branch), the inner loop
        is re-vectorised at each outer iteration with fresh entry state."""
        preload = (np.arange(4 * INPUT_WORDS).reshape(4, INPUT_WORDS) * 3) % 127
        source = """
            li r5, 0               ; outer counter
            li r6, 3
            li r7, 0               ; output cursor
            outer:
            li r1, 0
            li r3, 4
            inner:
            vload v0, r1, 0
            vrelu v1, v0
            vstore v1, r7, 230
            addi r7, r7, 1
            addi r1, r1, 1
            blt r1, r3, inner
            addi r5, r5, 1
            blt r5, r6, outer
            halt
            """
        program, _ = run_differential(source, preload=preload)
        # r7 advances too -> two scalar writers -> inner loop not analyzable,
        # but a single-writer variant is; check the analysis finds the outer
        # structure sanely on the simpler shape.
        simple = assemble(
            """
            li r1, 0
            li r3, 4
            inner:
            vload v0, r1, 0
            vrelu v1, v0
            vstore v1, r1, 230
            addi r1, r1, 1
            blt r1, r3, inner
            halt
            """
        )
        assert list(analyze_program(simple)) == [2]

    def test_watchdog_parity(self):
        program = assemble("loop: jmp loop\nhalt\n")
        with pytest.raises(ExecutionError):
            SimdProcessor(2).run(program, max_cycles=64)
        with pytest.raises(ExecutionError):
            TraceEngine(SimdProcessor(2)).run(program, max_cycles=64)

    def test_unreachable_bne_bound_watchdogs(self):
        """A BNE loop that never hits its bound has no finite trip count; the
        engine must refuse to vectorise and hit the watchdog exactly like the
        interpreter."""
        source = "li r1, 0\nli r3, 3\nloop: addi r1, r1, 2\nbne r1, r3, loop\nhalt\n"
        program = assemble(source)
        with pytest.raises(ExecutionError, match="watchdog"):
            SimdProcessor(2).run(program, max_cycles=100)
        with pytest.raises(ExecutionError, match="watchdog"):
            TraceEngine(SimdProcessor(2)).run(program, max_cycles=100)

    def test_empty_program_rejected(self):
        from repro.simd import Program

        with pytest.raises(ExecutionError):
            TraceEngine(SimdProcessor(2)).run(Program())

    def test_out_of_range_address_parity(self):
        source = """
            li r1, 0
            li r3, 4
            loop:
            vload v0, r1, 4094
            addi r1, r1, 1
            blt r1, r3, loop
            halt
            """
        program = assemble(source)
        with pytest.raises(IndexError):
            SimdProcessor(2).run(program)
        with pytest.raises(IndexError):
            TraceEngine(SimdProcessor(2)).run(program)


class TestCountdownLoops:
    def test_bne_countdown(self):
        run_differential(
            """
            li r1, 10
            loop:
            vload v0, r1, 0
            vstore v0, r1, 240
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            """,
            preload=np.arange(4 * INPUT_WORDS).reshape(4, INPUT_WORDS) % 19,
        )

    def test_blt_bound_first_decreasing(self):
        run_differential(
            """
            li r1, 12
            li r3, 2
            loop:
            vload v0, r1, 0
            vrelu v1, v0
            vstore v1, r1, 250
            addi r1, r1, -2
            blt r3, r1, loop
            halt
            """,
            preload=np.arange(4 * INPUT_WORDS).reshape(4, INPUT_WORDS) % 23 - 11,
        )


class TestBasicBlocks:
    def test_convolution_program_blocks(self):
        workload = convolution_kernel(4, input_length=16, taps=3)
        blocks = basic_blocks(workload.program)
        starts = [block.start for block in blocks]
        assert starts[0] == 0
        assert all(blocks[i].end + 1 == blocks[i + 1].start for i in range(len(blocks) - 1))
        assert blocks[-1].end == len(workload.program) - 1
        # Loop header (pc 2) must lead a block.
        assert 2 in starts

    def test_empty_program(self):
        from repro.simd import Program

        assert basic_blocks(Program()) == []
