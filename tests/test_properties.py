"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arithmetic.booth import booth_decode, booth_recode, generate_partial_products
from repro.arithmetic.fixed_point import (
    from_twos_complement,
    pack_subwords,
    round_lsbs,
    to_twos_complement,
    truncate_lsbs,
    unpack_subwords,
    wrap_signed,
)
from repro.arithmetic.multiplier import BoothWallaceMultiplier
from repro.arithmetic.subword import SubwordParallelMultiplier
from repro.arithmetic.wallace import reduce_rows
from repro.circuit.delay import delay_stretch
from repro.circuit.technology import TECH_40NM_LP_LVT
from repro.circuit.voltage_scaling import minimum_voltage_for_period
from repro.core.pareto import TradeoffPoint, pareto_front
from repro.nn.quantization import quantize

int16 = st.integers(min_value=-32768, max_value=32767)
int8 = st.integers(min_value=-128, max_value=127)


class TestTwosComplementProperties:
    @given(value=int16)
    def test_roundtrip(self, value):
        assert from_twos_complement(to_twos_complement(value, 16), 16) == value

    @given(value=st.integers(min_value=-(10**9), max_value=10**9))
    def test_wrap_is_idempotent(self, value):
        wrapped = wrap_signed(value, 16)
        assert wrap_signed(wrapped, 16) == wrapped
        assert (value - wrapped) % (1 << 16) == 0


class TestPrecisionGatingProperties:
    @given(value=int16, bits=st.integers(min_value=1, max_value=16))
    def test_truncation_error_bounded(self, value, bits):
        truncated = truncate_lsbs(value, 16, bits)
        assert abs(truncated - value) < 2 ** (16 - bits)

    @given(value=int16, bits=st.integers(min_value=1, max_value=16))
    def test_rounding_error_bounded(self, value, bits):
        rounded = round_lsbs(value, 16, bits)
        # Rounding may saturate at the positive end, which can add one step.
        assert abs(rounded - value) <= 2 ** (16 - bits)

    @given(value=int16)
    def test_full_precision_identity(self, value):
        assert truncate_lsbs(value, 16, 16) == value
        assert round_lsbs(value, 16, 16) == value


class TestSubwordPackingProperties:
    @given(values=st.lists(st.integers(min_value=-8, max_value=7), min_size=1, max_size=4))
    def test_pack_unpack_roundtrip(self, values):
        packed = pack_subwords(values, 4)
        assert unpack_subwords(packed, 4, len(values)) == values


class TestBoothProperties:
    @given(value=int16)
    def test_recode_roundtrip(self, value):
        assert booth_decode(booth_recode(value, 16)) == value

    @given(x=int16, y=int16)
    def test_partial_products_sum_to_product(self, x, y):
        assert sum(pp.value for pp in generate_partial_products(x, y, 16)) == x * y


class TestWallaceProperties:
    @given(rows=st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1), max_size=10))
    def test_reduction_preserves_modular_sum(self, rows):
        bits = 24
        result = reduce_rows(rows, bits)
        assert (result.sum_row + result.carry_row) % (1 << bits) == sum(rows) % (1 << bits)


class TestMultiplierProperties:
    @settings(max_examples=40, deadline=None)
    @given(x=int16, y=int16)
    def test_full_precision_product_exact(self, x, y):
        multiplier = BoothWallaceMultiplier(16)
        assert multiplier.multiply(x, y) == x * y

    @settings(max_examples=30, deadline=None)
    @given(x=int8, y=int8)
    def test_gated_product_matches_truncated_operands(self, x, y):
        multiplier = BoothWallaceMultiplier(8)
        multiplier.set_precision(4)
        expected = truncate_lsbs(x, 8, 4) * truncate_lsbs(y, 8, 4)
        assert multiplier.multiply(x, y) == expected

    @settings(max_examples=20, deadline=None)
    @given(
        xs=st.lists(st.integers(min_value=-8, max_value=7), min_size=4, max_size=4),
        ys=st.lists(st.integers(min_value=-8, max_value=7), min_size=4, max_size=4),
    )
    def test_subword_lanes_independent(self, xs, ys):
        multiplier = SubwordParallelMultiplier(16)
        multiplier.set_precision(4)
        assert multiplier.multiply(xs, ys) == [a * b for a, b in zip(xs, ys)]


class TestCircuitProperties:
    @given(voltage=st.floats(min_value=0.71, max_value=1.2))
    def test_delay_stretch_positive_and_monotonic(self, voltage):
        stretch = delay_stretch(TECH_40NM_LP_LVT, voltage)
        assert stretch > 0
        lower = delay_stretch(TECH_40NM_LP_LVT, voltage - 0.005) if voltage > 0.72 else stretch
        assert lower >= stretch - 1e-9

    @given(
        levels=st.floats(min_value=1.0, max_value=25.0),
        period=st.floats(min_value=2.0, max_value=20.0),
    )
    def test_minimum_voltage_meets_timing(self, levels, period):
        from repro.circuit.delay import path_delay_ns

        voltage = minimum_voltage_for_period(TECH_40NM_LP_LVT, levels, period)
        assert (
            path_delay_ns(TECH_40NM_LP_LVT, levels, voltage) <= period + 1e-6
            or voltage == TECH_40NM_LP_LVT.min_voltage
        )


class TestParetoProperties:
    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1, allow_nan=False),
                st.floats(min_value=0.01, max_value=2, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_front_is_subset_and_non_dominated(self, points):
        tradeoffs = [TradeoffPoint(a, e) for a, e in points]
        front = pareto_front(tradeoffs)
        assert front
        assert all(point in tradeoffs for point in front)
        for candidate in front:
            assert not any(
                other.dominates(candidate) for other in tradeoffs if other is not candidate
            )


class TestQuantizationProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=50,
        ),
        bits=st.integers(min_value=2, max_value=12),
    )
    def test_quantization_error_bounded_by_scale(self, values, bits):
        tensor = np.array(values)
        quantized = quantize(tensor, bits)
        from repro.nn.quantization import quantization_scale

        scale = quantization_scale(tensor, bits)
        assert np.max(np.abs(quantized - tensor)) <= scale * (1.0 + 1e-9)

    @settings(max_examples=30, deadline=None)
    @given(bits=st.integers(min_value=2, max_value=15))
    def test_more_bits_never_worse(self, bits):
        rng = np.random.default_rng(0)
        tensor = rng.normal(size=100)
        coarse = float(np.mean((quantize(tensor, bits) - tensor) ** 2))
        fine = float(np.mean((quantize(tensor, bits + 1) - tensor) ** 2))
        assert fine <= coarse + 1e-12
