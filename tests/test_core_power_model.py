"""Unit tests for the analytical DAS/DVAS/DVAFS power equations and Table I extraction."""

import pytest

from repro.core import (
    DvafsSystem,
    PAPER_TABLE_I,
    ScalingParameters,
    characterize_multiplier,
    multiplier_energy_curves,
)
from repro.core.operating_point import (
    OperatingPoint,
    operating_point_from_scaling,
    operating_points_from_characterization,
)


SYSTEM = DvafsSystem(
    as_capacitance_pf=20.0,
    nas_capacitance_pf=40.0,
    as_activity=0.5,
    nas_activity=0.4,
    base_frequency_mhz=500.0,
    nominal_voltage=1.1,
)


class TestScalingParameters:
    def test_paper_table_values(self):
        assert PAPER_TABLE_I[4].k0 == 12.5
        assert PAPER_TABLE_I[4].parallelism == 4
        assert PAPER_TABLE_I[16].k2 == 1.0

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            ScalingParameters(8, k0=0.5, k1=1.0, k2=1.0, k3=1.0, k4=1.0, k5=1.0, parallelism=1)


class TestPowerEquations:
    def test_full_precision_all_techniques_equal(self):
        scaling = PAPER_TABLE_I[16]
        das = SYSTEM.das_power(scaling).total_mw
        dvas = SYSTEM.dvas_power(scaling).total_mw
        dvafs = SYSTEM.dvafs_power(scaling).total_mw
        assert das == pytest.approx(dvas)
        assert das == pytest.approx(dvafs)

    def test_ordering_at_low_precision(self):
        """DVAFS < DVAS < DAS in energy per word at 4 bits (the paper's core claim)."""
        scaling = PAPER_TABLE_I[4]
        das = SYSTEM.das_energy_per_word_pj(scaling)
        dvas = SYSTEM.dvas_energy_per_word_pj(scaling)
        dvafs = SYSTEM.dvafs_energy_per_word_pj(scaling)
        assert dvafs < dvas < das

    def test_das_only_scales_as_part(self):
        scaling = PAPER_TABLE_I[4]
        split = SYSTEM.das_power(scaling)
        reference = SYSTEM.das_power(PAPER_TABLE_I[16])
        assert split.nas_mw == pytest.approx(reference.nas_mw)
        assert split.as_mw < reference.as_mw

    def test_dvafs_scales_nas_part_too(self):
        scaling = PAPER_TABLE_I[4]
        dvafs = SYSTEM.dvafs_power(scaling)
        dvas = SYSTEM.dvas_power(scaling)
        assert dvafs.nas_mw < dvas.nas_mw

    def test_dvfs_reference(self):
        half = SYSTEM.dvfs_power(250.0, 1.1)
        full = SYSTEM.dvfs_power(500.0, 1.1)
        assert half.total_mw == pytest.approx(full.total_mw / 2)

    def test_memory_domain_power(self):
        system = DvafsSystem(
            as_capacitance_pf=10.0,
            nas_capacitance_pf=10.0,
            as_activity=0.5,
            nas_activity=0.5,
            base_frequency_mhz=500.0,
            nominal_voltage=1.1,
            mem_capacitance_pf=10.0,
            mem_voltage=1.1,
        )
        split = system.dvafs_power(PAPER_TABLE_I[4])
        assert split.mem_mw > 0
        fractions = split.fractions()
        assert fractions["mem"] == pytest.approx(split.mem_mw / split.total_mw)


class TestCharacterization:
    def test_table1_shape(self, characterization):
        table = characterization.scaling_parameters()
        assert set(table) == {4, 8, 12, 16}
        assert table[4].parallelism == 4
        assert table[8].parallelism == 2
        assert table[16].parallelism == 1

    def test_k_factors_monotonic_in_precision(self, characterization):
        table = characterization.scaling_parameters()
        assert table[4].k0 > table[8].k0 > table[12].k0 >= table[16].k0
        assert table[4].k4 > table[8].k4 >= table[16].k4

    def test_k_factors_match_paper_within_factor_two(self, characterization):
        table = characterization.scaling_parameters()
        for precision, paper in PAPER_TABLE_I.items():
            ours = table[precision]
            assert ours.k0 == pytest.approx(paper.k0, rel=1.0)
            assert ours.k3 == pytest.approx(paper.k3, rel=0.6)
            assert ours.k4 == pytest.approx(paper.k4, rel=0.25)
            assert ours.parallelism == paper.parallelism

    def test_relative_activity_profiles(self, characterization):
        das = characterization.relative_activity("das")
        dvafs = characterization.relative_activity("dvafs")
        assert das[16] == pytest.approx(1.0, abs=0.05)
        # Per-cycle DVAFS activity drops less steeply than per-word DAS activity.
        assert dvafs[4] > das[4]
        with pytest.raises(ValueError):
            characterization.relative_activity("unknown")

    def test_energy_curves_reproduce_fig3a_shape(self, characterization):
        points = multiplier_energy_curves(characterization)
        by_key = {(p.technique, p.precision): p for p in points}
        # 21 % reconfiguration overhead at full precision.
        assert 1.1 < by_key[("DVAFS", 16)].relative_energy < 1.35
        # >95 % savings at 4x4b relative to the plain 16 b multiplier.
        assert by_key[("DVAFS", 4)].relative_energy < 0.08
        # DVAS sits between DAS and DVAFS at 4 bits.
        assert (
            by_key[("DVAFS", 4)].relative_energy
            < by_key[("DVAS", 4)].relative_energy
            < by_key[("DAS", 4)].relative_energy
        )

    def test_characterization_requires_reference_precision(self):
        with pytest.raises(ValueError):
            characterize_multiplier(precisions=(8, 4), samples=10)


class TestOperatingPoints:
    def test_from_characterization(self, characterization):
        points = operating_points_from_characterization(characterization)
        assert set(points) == {"DAS", "DVAS", "DVAFS"}
        dvafs_4 = [p for p in points["DVAFS"] if p.precision == 4][0]
        assert dvafs_4.parallelism == 4
        assert dvafs_4.frequency_mhz == pytest.approx(125.0)
        assert dvafs_4.throughput_mops == pytest.approx(500.0)

    def test_from_scaling_table(self):
        point = operating_point_from_scaling(
            PAPER_TABLE_I[4], base_frequency_mhz=500.0, nominal_voltage=1.1, technique="DVAFS"
        )
        assert point.mode_label == "4x4b"
        assert point.as_voltage == pytest.approx(1.1 / 1.53, rel=1e-6)

    def test_mode_label(self):
        point = OperatingPoint(8, 2, 250.0, 0.9, 0.9)
        assert point.mode_label == "2x8b"

    def test_invalid_operating_point(self):
        with pytest.raises(ValueError):
            OperatingPoint(0, 1, 100.0, 1.0, 1.0)
