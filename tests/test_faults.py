"""Chaos suite: deterministic fault injection against every recovery layer.

The ``repro.faults`` harness drives the failures production would
eventually produce -- worker kills, hung units, corrupt store entries,
full disks, dying services -- at named injection sites, and this suite
asserts the *documented* recovery for each: the executor retries onto a
fresh pool (bit-identically), the stores quarantine instead of crashing
or silently deleting, and the service journals jobs across restarts,
sheds load with 503s and drains on SIGTERM.

Worker-process tests run with ``ExecutionPolicy(oversubscribe=True)``:
CI boxes can be single-core, where the CPU clamp would silently route
everything through the serial in-process path (which cannot crash or
hang a worker).  ``times`` budgets are shared across processes through a
state directory, so "kill exactly one worker" stays exactly one kill
through the retry that must then succeed.
"""

from __future__ import annotations

import errno
import importlib
import json
import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time
import uuid
from pathlib import Path

import pytest

from repro.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    corrupt_file,
    fault_point,
    injected,
    parse_faults,
)
from repro.runner.artifacts import load_stats
from repro.runner.cache import ResultCache
from repro.runner.errors import (
    ExecutionError,
    ReproError,
    UnitTimeoutError,
    WorkerCrashError,
)
from repro.runner.executor import ExecutionOutcome, ExecutionPolicy, parallel_sweep
from repro.runner.registry import ExperimentSpec
from repro.runner.service import ExperimentRunner
from repro.service import BackgroundServer, build_app
from repro.service.jobs import JobJournal, JobManager, JobRecord
from repro.service.middleware import TokenBucket
from repro.service.models import ServiceError

SMALL = {"input_length": 24, "taps": 5, "simd_widths": (8,)}

TOY_SOURCE = '''\
"""Toy experiment driver for chaos tests (milliseconds per run)."""

import time

PARAMS = {"x": 2, "boom": False, "delay": 0.0}


def run(*, x=2, boom=False, delay=0.0):
    if delay:
        time.sleep(delay)
    if boom:
        raise RuntimeError("toy experiment exploded")
    return [{"x": x, "y": x * x}]


def render(rows):
    return "\\n".join(f"{row['x']} -> {row['y']}" for row in rows)
'''


def _toy_runner(tmp_path, monkeypatch):
    module_dir = tmp_path / "modules"
    module_dir.mkdir(exist_ok=True)
    module_name = f"chaostoy_{uuid.uuid4().hex[:8]}"
    (module_dir / f"{module_name}.py").write_text(TOY_SOURCE)
    monkeypatch.syspath_prepend(str(module_dir))
    module = importlib.import_module(module_name)
    spec = ExperimentSpec.from_module("toy", module)
    return ExperimentRunner(cache=ResultCache(tmp_path / "cache"), registry={"toy": spec})


@pytest.fixture()
def toy_runner(tmp_path, monkeypatch):
    return _toy_runner(tmp_path, monkeypatch)


def _grid_cell(*, x):
    """Module-level so ProcessPoolExecutor can pickle it."""
    return {"y": 2 * x, "parity": x % 2}


def _wait_for(predicate, *, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


# -- plan parsing -------------------------------------------------------------------


class TestPlanParsing:
    def test_clauses_round_trip(self):
        text = "executor.unit:kill:match=fig4;cache.write:disk_full:times=3;s:hang:seconds=2.5:at=2"
        specs = parse_faults(text)
        assert [spec.kind for spec in specs] == ["kill", "disk_full", "hang"]
        assert specs[0] == FaultSpec(site="executor.unit", kind="kill", match="fig4")
        assert specs[1].times == 3
        assert specs[2].seconds == 2.5 and specs[2].at == 2
        # clause() emits text that re-parses to the identical spec.
        assert parse_faults(";".join(spec.clause() for spec in specs)) == specs

    def test_blank_clauses_are_skipped(self):
        assert parse_faults("") == ()
        assert parse_faults(" ; ;; ") == ()

    @pytest.mark.parametrize(
        "bad",
        [
            "justasite",
            "site:explode",
            "site:exc:times",
            "site:exc:frequency=often",
            "site:exc:times=0",
            "site:exc:times=many",
            "site:hang:seconds=soon",
        ],
    )
    def test_malformed_clauses_are_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_faults(bad)


# -- fault actions ------------------------------------------------------------------


class TestFaultActions:
    def test_unset_env_is_a_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        fault_point("anything.at.all", key="whatever")

    def test_exc_fires_within_its_times_budget(self):
        with injected("boomsite:exc:times=2"):
            for _ in range(2):
                with pytest.raises(FaultInjected):
                    fault_point("boomsite")
            fault_point("boomsite")  # budget spent: no-op
            fault_point("othersite")  # different site: never fires

    def test_at_option_targets_one_invocation(self):
        with injected("site:exc:at=3:times=10"):
            fault_point("site")
            fault_point("site")
            with pytest.raises(FaultInjected):
                fault_point("site")
            fault_point("site")  # at=3 only matches the third call

    def test_match_option_filters_on_key(self):
        with injected("executor.unit:exc:match=fig4:times=10"):
            fault_point("executor.unit", key="table2")
            fault_point("executor.unit")  # no key at all
            with pytest.raises(FaultInjected):
                fault_point("executor.unit", key="fig4")

    def test_slow_injects_latency_then_continues(self):
        with injected("site:slow:seconds=0.05"):
            start = time.monotonic()
            fault_point("site")
            assert time.monotonic() - start >= 0.04

    def test_disk_full_raises_enospc(self):
        with injected("cache.write:disk_full"):
            with pytest.raises(OSError) as excinfo:
                fault_point("cache.write", key="toy")
            assert excinfo.value.errno == errno.ENOSPC

    def test_corrupt_mangles_the_sites_file(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text(json.dumps({"schema": 1, "payload": list(range(100))}))
        with injected("cache.written:corrupt"):
            fault_point("cache.written", key="toy", path=path)
        blob = path.read_bytes()
        assert blob.startswith(b"\xde\xad\xbe\xef")
        with pytest.raises(ValueError):
            json.loads(blob)

    def test_corrupt_tolerates_a_vanished_file(self, tmp_path):
        corrupt_file(tmp_path / "never-existed.json")  # must not raise

    def test_kill_in_main_process_degrades_to_exception(self):
        # A misconfigured plan must never SIGKILL the orchestrator/test
        # runner itself; in the main process the kill becomes FaultInjected.
        with injected("site:kill"):
            with pytest.raises(FaultInjected, match="main process"):
                fault_point("site")

    def test_state_dir_makes_times_budget_global(self, tmp_path):
        # Two plans sharing a state directory model two processes racing
        # for the same budget: exactly one wins the single ticket.
        specs = parse_faults("site:exc")
        plan_a = FaultPlan(specs, state_dir=tmp_path)
        plan_b = FaultPlan(specs, state_dir=tmp_path)
        with pytest.raises(FaultInjected):
            plan_a.fire("site")
        plan_b.fire("site")  # ticket already claimed: no-op
        plan_a.fire("site")
        assert len(list(tmp_path.glob("fault-*.fired"))) == 1

    def test_injected_restores_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "old.site:exc")
        monkeypatch.delenv("REPRO_FAULTS_STATE", raising=False)
        with injected("site:slow:seconds=0", state_dir="/tmp/somewhere"):
            assert os.environ["REPRO_FAULTS"] == "site:slow:seconds=0"
            assert os.environ["REPRO_FAULTS_STATE"] == "/tmp/somewhere"
        assert os.environ["REPRO_FAULTS"] == "old.site:exc"
        assert "REPRO_FAULTS_STATE" not in os.environ


# -- executor recovery --------------------------------------------------------------


CHAOS_GRID = {"x": [1, 2, 3, 4]}


class TestExecutorRecovery:
    def _clean_records(self):
        return parallel_sweep(CHAOS_GRID, _grid_cell, jobs=1).records

    def test_killed_worker_is_retried_bit_identically(self, tmp_path):
        outcome = ExecutionOutcome()
        policy = ExecutionPolicy(oversubscribe=True, retries=3)
        with injected("executor.sweep:kill:match=x=3", state_dir=tmp_path / "state"):
            result = parallel_sweep(
                CHAOS_GRID, _grid_cell, jobs=2, policy=policy, outcome=outcome
            )
        assert json.dumps(result.records) == json.dumps(self._clean_records())
        assert outcome.crashes >= 1
        assert outcome.retries >= 1
        assert outcome.respawns >= 1
        assert outcome.degraded is False

    def test_hung_unit_times_out_and_retry_succeeds(self, tmp_path):
        outcome = ExecutionOutcome()
        policy = ExecutionPolicy(oversubscribe=True, timeout=1.0, retries=3)
        with injected(
            "executor.sweep:hang:seconds=30:match=x=2", state_dir=tmp_path / "state"
        ):
            result = parallel_sweep(
                CHAOS_GRID, _grid_cell, jobs=2, policy=policy, outcome=outcome
            )
        assert json.dumps(result.records) == json.dumps(self._clean_records())
        assert outcome.timeouts >= 1
        assert outcome.retries >= 1

    def test_persistent_crash_surfaces_worker_crash_error(self):
        # No state dir: every freshly-forked worker re-fires the kill, so
        # the retry budget must run out -- and the failure must surface as
        # the typed taxonomy error, never a raw BrokenProcessPool.
        policy = ExecutionPolicy(oversubscribe=True, retries=1, pool_respawns=5)
        with injected("executor.sweep:kill:times=100"):
            with pytest.raises(WorkerCrashError) as excinfo:
                parallel_sweep(CHAOS_GRID, _grid_cell, jobs=2, policy=policy)
        assert excinfo.value.code == "worker_crashed"
        assert isinstance(excinfo.value, ExecutionError)
        assert isinstance(excinfo.value, ReproError)

    def test_persistent_hang_surfaces_unit_timeout_error(self):
        policy = ExecutionPolicy(
            oversubscribe=True, timeout=0.4, retries=1, pool_respawns=5
        )
        with injected("executor.sweep:hang:seconds=30:times=100:match=x=1"):
            with pytest.raises(UnitTimeoutError) as excinfo:
                parallel_sweep(CHAOS_GRID, _grid_cell, jobs=2, policy=policy)
        assert excinfo.value.code == "unit_timeout"
        assert isinstance(excinfo.value, ExecutionError)

    def test_unspawnable_pool_degrades_to_serial(self):
        outcome = ExecutionOutcome()
        policy = ExecutionPolicy(oversubscribe=True)
        with injected("executor.pool:exc:times=100"):
            result = parallel_sweep(
                CHAOS_GRID, _grid_cell, jobs=2, policy=policy, outcome=outcome
            )
        assert outcome.degraded is True
        assert json.dumps(result.records) == json.dumps(self._clean_records())

    def test_driver_exceptions_are_not_retried(self):
        # A deterministic driver bug re-raised N times is N times the
        # wasted compute: only crashes/timeouts are retryable.
        outcome = ExecutionOutcome()
        policy = ExecutionPolicy(oversubscribe=True, retries=3)
        with injected("executor.sweep:exc:match=x=4:times=100"):
            with pytest.raises(FaultInjected):
                parallel_sweep(CHAOS_GRID, _grid_cell, jobs=2, policy=policy, outcome=outcome)
        assert outcome.retries == 0

    def test_capstone_cold_run_with_midwave_kill_is_bit_identical(self, tmp_path):
        # The PR's headline guarantee: a cold multi-experiment run that
        # loses a worker mid-wave completes -- and its rows are
        # byte-identical to an undisturbed cold run.
        requests = [("fig4", dict(SMALL)), ("table2", dict(SMALL))]
        clean = ExperimentRunner(cache=ResultCache(tmp_path / "clean")).run_many(
            requests, jobs=2
        )
        policy = ExecutionPolicy(oversubscribe=True, retries=3)
        chaos_runner = ExperimentRunner(cache=ResultCache(tmp_path / "chaos"))
        with injected("executor.unit:kill:match=fig4", state_dir=tmp_path / "state"):
            recovered = chaos_runner.run_many(requests, jobs=2, policy=policy)
        assert [report.name for report in recovered] == [report.name for report in clean]
        assert json.dumps([r.rows for r in recovered]) == json.dumps([r.rows for r in clean])
        # The recovery was observed and accounted for in the persisted stats.
        assert load_stats(chaos_runner.cache.root).retried >= 1
        # ... and the recovered cache replays warm, like any clean run.
        warm = chaos_runner.run_many(requests, jobs=1)
        assert all(report.cached for report in warm)


# -- store corruption recovery ------------------------------------------------------


class TestStoreRecovery:
    def test_raced_quarantine_counts_corruption_without_quarantine(
        self, tmp_path, monkeypatch
    ):
        # The quarantine move itself can lose a race (another process
        # unlinked/moved the entry first): the corruption is still tallied,
        # but not as quarantined, and the read stays a plain miss.
        cache = ResultCache(tmp_path)
        path = tmp_path / "toy" / "deadbeef.json"
        path.parent.mkdir(parents=True)
        path.write_text("{definitely not json")

        def racing_replace(source, destination):
            raise OSError(errno.ENOENT, "raced away")

        monkeypatch.setattr(os, "replace", racing_replace)
        assert cache.get("toy", "deadbeef") is None
        drained = cache.drain_stats()
        assert drained["corrupt"] == 1 and drained["quarantined"] == 0

    def test_disk_full_cache_write_degrades_to_uncached_success(self, toy_runner):
        with injected("cache.write:disk_full:times=100"):
            (report,) = toy_runner.run_many([("toy", {"x": 5})])
        assert report.rows == [{"x": 5, "y": 25}]
        assert report.cached is False
        assert toy_runner.cache.ls() == []  # nothing was persisted ...
        (again,) = toy_runner.run_many([("toy", {"x": 5})])  # ... and reruns recompute
        assert again.cached is False

    def test_corrupted_entry_is_quarantined_and_recomputed(self, toy_runner):
        # Fault fires right after the atomic replace, corrupting the bytes
        # the next read will trust -- the end-to-end cache.written:corrupt
        # -> quarantine -> recompute path.
        with injected("cache.written:corrupt"):
            (cold,) = toy_runner.run_many([("toy", {"x": 6})])
        (recovered,) = toy_runner.run_many([("toy", {"x": 6})])
        assert recovered.cached is False  # the corrupt entry was not trusted
        assert json.dumps(recovered.rows) == json.dumps(cold.rows)
        root = toy_runner.cache.root
        quarantined = list((root / "corrupt" / "toy").glob("*.json"))
        assert len(quarantined) == 1
        stats = load_stats(root)
        assert stats.result_corrupt >= 1
        assert stats.quarantined >= 1
        # After recovery the rewritten entry serves warm hits again.
        (warm,) = toy_runner.run_many([("toy", {"x": 6})])
        assert warm.cached is True


# -- concurrent-fill claim recovery -------------------------------------------------


def _claim_and_die(root, key):
    """Child-process victim: win the fill claim, then get SIGKILLed by the fault.

    The plan is set in the child only (the parent must stay fault-free),
    and a child process is a *real* kill target -- in the main process the
    kill degrades to an exception, which is exactly not what this test
    needs.
    """
    os.environ["REPRO_FAULTS"] = "cache.claim:kill"
    ResultCache(root).claim("toy", key)
    raise AssertionError("the claim fault should have killed this process")


class TestClaimRecovery:
    def test_winner_killed_mid_fill_leaves_a_stale_claim_losers_take_over(
        self, toy_runner, tmp_path, monkeypatch
    ):
        # A clean reference run in a separate cache (what the rows must match).
        clean_runner = ExperimentRunner(
            cache=ResultCache(tmp_path / "clean_cache"), registry=toy_runner.registry
        )
        (clean,) = clean_runner.run_many([("toy", {"x": 9})])

        _config, key, _fingerprint = toy_runner.address("toy", {"x": 9})
        victim = multiprocessing.get_context("fork").Process(
            target=_claim_and_die, args=(toy_runner.cache.root, key)
        )
        victim.start()
        victim.join(timeout=60)
        assert victim.exitcode == -signal.SIGKILL  # died inside the claim, for real
        ticket = toy_runner.cache.claim_info("toy", key)
        assert ticket is not None and ticket.is_stale()  # dead pid, this host

        # A loser arriving now loses the claim race against the corpse,
        # detects the stale ticket, takes the fill over and computes --
        # byte-identical to the undisturbed run.
        (recovered,) = toy_runner.run_many([("toy", {"x": 9})])
        assert recovered.cached is False
        assert json.dumps(recovered.rows) == json.dumps(clean.rows)
        assert toy_runner.cache.claim_info("toy", key) is None  # fill cleared it
        stats = load_stats(toy_runner.cache.root)
        assert stats.result_claim_waits >= 1  # the takeover was accounted
        # ... and the recovered entry replays warm, like any clean fill.
        (warm,) = toy_runner.run_many([("toy", {"x": 9})])
        assert warm.cached is True
        assert json.dumps(warm.rows) == json.dumps(clean.rows)

    def test_exc_at_the_claim_site_never_leaks_the_claim(self, toy_runner):
        _config, key, _fingerprint = toy_runner.address("toy", {"x": 8})
        with injected("cache.claim:exc"):
            with pytest.raises(FaultInjected):
                toy_runner.cache.claim("toy", key)
        assert toy_runner.cache.claim_info("toy", key) is None  # released on the way out
        (report,) = toy_runner.run_many([("toy", {"x": 8})])  # clean rerun fills
        assert report.rows == [{"x": 8, "y": 64}]

    def test_artifact_claim_exc_releases_and_reruns_compute(self, tmp_path):
        from repro.runner.artifacts import ArtifactStore, produce_into

        store = ArtifactStore(tmp_path)
        with injected("artifact.claim:exc"):
            with pytest.raises(FaultInjected):
                produce_into(store, "demo", {"x": 2}, lambda *, x: {"value": x})
        key_claims = [
            ticket for namespace, filename in store.backend.iter()
            if (ticket := store.backend.claim_info(namespace, filename)) is not None
        ]
        assert key_claims == []  # no wedged addresses anywhere
        entry = produce_into(store, "demo", {"x": 2}, lambda *, x: {"value": x})
        assert entry.payload == {"value": 2}

    def test_evict_fault_site_fires_per_evicted_entry(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1)
        from repro.analysis.sweep import SweepResult
        from repro.runner.cache import CacheEntry, cache_key

        def entry(i):
            return CacheEntry(
                experiment="toy", params={}, fingerprint="f" * 64,
                result=SweepResult(records=[{"i": i}]), elapsed_seconds=0.0,
            )

        cache.put(cache_key("toy", "{1}", "f" * 64), entry(1))
        with injected("cache.evict:exc:match=toy"):
            with pytest.raises(FaultInjected):
                cache.put(cache_key("toy", "{2}", "f" * 64), entry(2))


# -- service durability -------------------------------------------------------------


def _wait_for_state(manager, job_id, *states, timeout=30.0):
    _wait_for(
        lambda: manager.get(job_id).state in states,
        timeout=timeout,
        message=f"job {job_id} to reach {states}",
    )
    return manager.get(job_id)


class TestJobDurability:
    def test_journal_survives_restart_and_marks_interrupted(self, toy_runner, tmp_path):
        state_dir = tmp_path / "jobs"
        manager = JobManager(toy_runner, state_dir=state_dir)
        finished, _created = manager.submit(
            kind="run", experiments=["toy"], params={"x": 3}
        )
        _wait_for_state(manager, finished.id, "done")

        # A crash mid-job leaves a 'running' record as the journal's last
        # word for that id; append one directly to model the dead process.
        orphan = JobRecord(
            id="job-orphan000000",
            kind="run",
            experiments=["toy"],
            params={"x": 7},
            grid=None,
            jobs=1,
            request_id="req-original",
            idempotency_key="orphan-key",
            state="running",
        )
        JobJournal(state_dir).append(orphan.to_journal())
        manager._pool.shutdown(wait=False)

        restarted = JobManager(toy_runner, state_dir=state_dir)
        states = {record["id"]: record["state"] for record in restarted.listing()}
        assert states[finished.id] == "done"
        assert states[orphan.id] == "interrupted"
        record = restarted.get(orphan.id)
        assert record.error["code"] == "interrupted"
        assert record.progress["phase"] == "interrupted"

        # The idempotency key registered before the crash still collapses
        # duplicate submissions after the restart.
        same, created = restarted.submit(
            kind="run",
            experiments=["toy"],
            params={"x": 7},
            idempotency_key="orphan-key",
        )
        assert created is False and same.id == orphan.id
        with pytest.raises(ServiceError) as excinfo:
            restarted.submit(
                kind="run",
                experiments=["toy"],
                params={"x": 8},
                idempotency_key="orphan-key",
            )
        assert excinfo.value.code == "idempotency_conflict"

        # Retry actually re-runs the interrupted job to completion.
        restarted.resubmit(orphan.id)
        record = _wait_for_state(restarted, orphan.id, "done")
        assert record.reports[0]["rows"] == [{"x": 7, "y": 49}]
        restarted.close(wait=True, drain_seconds=10)

    def test_torn_journal_tail_is_skipped(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs")
        record = JobRecord(
            id="job-whole0000000",
            kind="run",
            experiments=["toy"],
            params={},
            grid=None,
            jobs=1,
            request_id="",
            idempotency_key=None,
            state="done",
        )
        journal.append(record.to_journal())
        with open(journal.journal_path, "a") as handle:
            handle.write('{"id": "job-torn", "state": "runn')  # crash mid-append
        documents = journal.load()
        assert [doc["id"] for doc in documents] == ["job-whole0000000"]

    def test_resubmit_rejects_unknown_and_unretryable_jobs(self, toy_runner, tmp_path):
        manager = JobManager(toy_runner, state_dir=tmp_path / "jobs")
        record, _created = manager.submit(kind="run", experiments=["toy"], params={"x": 2})
        _wait_for_state(manager, record.id, "done")
        with pytest.raises(ServiceError) as excinfo:
            manager.resubmit(record.id)
        assert excinfo.value.status == 409 and excinfo.value.code == "not_retryable"
        with pytest.raises(ServiceError) as excinfo:
            manager.resubmit("job-doesnotexist")
        assert excinfo.value.status == 404
        manager.close(wait=True, drain_seconds=10)

    def test_bounded_queue_sheds_with_overloaded(self, toy_runner):
        manager = JobManager(toy_runner, max_queue=1)
        slow, _created = manager.submit(
            kind="run", experiments=["toy"], params={"delay": 1.5}
        )
        with pytest.raises(ServiceError) as excinfo:
            manager.submit(kind="run", experiments=["toy"], params={"x": 9})
        assert excinfo.value.status == 503
        assert excinfo.value.code == "overloaded"
        assert excinfo.value.retry_after and excinfo.value.retry_after > 0
        _wait_for_state(manager, slow.id, "done")
        accepted, created = manager.submit(kind="run", experiments=["toy"], params={"x": 9})
        assert created is True  # capacity freed: submissions flow again
        _wait_for_state(manager, accepted.id, "done")
        manager.close(wait=True, drain_seconds=10)

    def test_close_deadline_marks_leftovers_interrupted(self, toy_runner, tmp_path):
        manager = JobManager(toy_runner, state_dir=tmp_path / "jobs")
        record, _created = manager.submit(
            kind="run", experiments=["toy"], params={"delay": 2.0}
        )
        _wait_for_state(manager, record.id, "running")
        interrupted = manager.close(wait=True, drain_seconds=0.2)
        assert interrupted == 1
        assert manager.get(record.id).state == "interrupted"
        assert manager.get(record.id).error["code"] == "interrupted"

    def test_http_overload_returns_503_with_retry_after(self, toy_runner):
        import http.client

        with BackgroundServer(build_app(toy_runner, max_queue=1)) as server:
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)

            def post_job(params):
                conn.request(
                    "POST", "/v1/jobs", body=json.dumps({"experiment": "toy", "params": params})
                )
                response = conn.getresponse()
                return response, json.loads(response.read())

            response, first = post_job({"delay": 1.5})
            assert response.status == 202
            response, shed = post_job({"x": 4})
            assert response.status == 503
            assert shed["error"]["code"] == "overloaded"
            assert int(response.getheader("retry-after")) >= 1
            # The shed request is visible in the metrics snapshot.
            conn.request("GET", "/v1/metrics")
            response = conn.getresponse()
            metrics = json.loads(response.read())
            assert metrics["requests"]["shed"] == 1
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                conn.request("GET", f"/v1/jobs/{first['job']['id']}")
                response = conn.getresponse()
                if json.loads(response.read())["state"] == "done":
                    break
                time.sleep(0.05)
            conn.close()


# -- rate limiter bucket hygiene ----------------------------------------------------


class TestRateLimiterHygiene:
    def _limiter(self, **kwargs):
        clock = {"now": 0.0}
        defaults = dict(
            rate=1.0, burst=2, clock=lambda: clock["now"], max_clients=3, max_idle_seconds=10.0
        )
        defaults.update(kwargs)
        return TokenBucket(**defaults), clock

    def test_one_shot_burst_cannot_evict_a_limited_client(self):
        limiter, _clock = self._limiter()
        assert limiter.check("limited") == 0.0
        assert limiter.check("limited") == 0.0
        assert limiter.check("limited") > 0  # drained: actively limited
        # A scan of fresh one-shot clients overflows the table; the
        # eviction victim must be a (nearly) full scan bucket, never the
        # drained one -- otherwise the scan resets the limit.
        for scanner in ("scan-a", "scan-b", "scan-c", "scan-d"):
            assert limiter.check(scanner) == 0.0
        assert "limited" in limiter._buckets
        assert limiter.check("limited") > 0  # the drained state survived

    def test_idle_buckets_are_swept_to_bound_memory(self):
        limiter, clock = self._limiter(max_clients=1000)
        for index in range(10):
            limiter.check(f"one-shot-{index}")
        clock["now"] = 100.0  # far past max_idle_seconds
        for _ in range(TokenBucket.SWEEP_EVERY):
            limiter.check("active")
        assert set(limiter._buckets) == {"active"}

    def test_idle_bucket_resets_on_revisit(self):
        # With a very slow refill, only the idle reset (not refill) can
        # explain a fresh allowance after the idle window.
        limiter, clock = self._limiter(rate=0.01, burst=2, max_idle_seconds=10.0)
        assert limiter.check("client") == 0.0
        assert limiter.check("client") == 0.0
        assert limiter.check("client") > 0
        clock["now"] = 11.0  # 0.11 tokens of refill -- still denied without reset
        assert limiter.check("client") == 0.0

    def test_fresh_traffic_is_still_limited_after_sweeps(self):
        limiter, clock = self._limiter()
        clock["now"] = 50.0
        assert limiter.check("client") == 0.0
        assert limiter.check("client") == 0.0
        assert limiter.check("client") > 0


# -- process-level drain ------------------------------------------------------------


class TestSigtermDrain:
    def test_sigterm_drains_and_exits_cleanly(self, tmp_path):
        src_dir = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONUNBUFFERED"] = "1"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        lines: list[str] = []
        ready = threading.Event()

        def pump():
            for line in process.stdout:
                lines.append(line)
                if "serving the reproduction" in line:
                    ready.set()

        reader = threading.Thread(target=pump, daemon=True)
        reader.start()
        try:
            assert ready.wait(timeout=30), f"server never came up: {lines}"
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
        reader.join(timeout=10)
        assert any("shutdown signal received; draining jobs" in line for line in lines)
