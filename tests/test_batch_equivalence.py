"""Scalar-vs-batch equivalence of the vectorized bit-plane datapath engine.

The scalar stage-walk models are the golden reference; every test drives the
same operand stream through a scalar-evaluated and a batch-evaluated instance
and demands *bit-identical* results: products, per-stage weighted toggle
activity, word counts, toggle-baseline state and (for the MAC) statistics.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arithmetic.batch import (
    MAX_BATCH_WIDTH,
    batch_booth_digits,
    batch_digit_codes,
    batch_multiply,
    batch_partial_products,
    batch_reduce_rows,
    batch_round_lsbs,
    batch_truncate_lsbs,
    bit_count,
    chained_toggle_counts,
)
from repro.arithmetic.booth import booth_recode, digit_to_code, generate_partial_products
from repro.arithmetic.fixed_point import round_lsbs, signed_range, truncate_lsbs
from repro.arithmetic.mac import MacUnit
from repro.arithmetic.multiplier import BoothWallaceMultiplier
from repro.arithmetic.subword import SubwordParallelMultiplier
from repro.arithmetic.wallace import reduce_rows

# Even widths the structural multiplier accepts, capped at the batch engine's
# 64-bit-product limit.
widths = st.sampled_from([4, 6, 8, 10, 12, 16, 20, 32])


@st.composite
def width_and_operands(draw, min_size=0, max_size=48):
    width = draw(widths)
    lo, hi = signed_range(width)
    operand = st.integers(min_value=lo, max_value=hi)
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    xs = draw(st.lists(operand, min_size=size, max_size=size))
    ys = draw(st.lists(operand, min_size=size, max_size=size))
    precision = draw(st.integers(min_value=2, max_value=width))
    return width, precision, xs, ys


def assert_same_activity(reference, candidate):
    assert reference.activity.stage_toggles == candidate.activity.stage_toggles
    assert reference.activity.words == candidate.activity.words


class TestPrimitiveEquivalence:
    @given(
        values=st.lists(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)),
        width=widths,
        active=st.integers(min_value=1, max_value=32),
    )
    def test_gating_matches_scalar(self, values, width, active):
        active = min(active, width)
        arr = np.asarray(values, dtype=np.int64)
        expected_trunc = [truncate_lsbs(v, width, active) for v in values]
        expected_round = [round_lsbs(v, width, active) for v in values]
        assert batch_truncate_lsbs(arr, width, active).tolist() == expected_trunc
        assert batch_round_lsbs(arr, width, active).tolist() == expected_round

    @given(data=width_and_operands(min_size=1, max_size=24))
    def test_booth_digits_and_codes_match_scalar(self, data):
        width, _, xs, _ = data
        digits = batch_booth_digits(np.asarray(xs, dtype=np.int64), width)
        codes = batch_digit_codes(digits)
        for row, value in enumerate(xs):
            expected = booth_recode(value, width)
            assert digits[row].tolist() == expected
            assert codes[row].tolist() == [digit_to_code(d) for d in expected]

    @given(data=width_and_operands(min_size=1, max_size=16))
    def test_partial_products_match_scalar(self, data):
        width, _, xs, ys = data
        digits = batch_booth_digits(np.asarray(ys, dtype=np.int64), width)
        patterns = batch_partial_products(np.asarray(xs, dtype=np.int64), digits, width)
        mask = (1 << (2 * width)) - 1
        for row, (x, y) in enumerate(zip(xs, ys)):
            expected = [pp.value & mask for pp in generate_partial_products(x, y, width)]
            assert patterns[row].tolist() == expected

    @given(
        rows=st.lists(
            st.lists(st.integers(min_value=0, max_value=(1 << 24) - 1), min_size=3, max_size=3),
            min_size=1,
            max_size=12,
        )
    )
    def test_reduction_levels_match_scalar(self, rows):
        bits = 24
        matrix = np.asarray(rows, dtype=np.uint64).T  # (N=3, R) batched columns
        trace = batch_reduce_rows(matrix, bits)
        for batch_index in range(3):
            scalar = reduce_rows([r[batch_index] for r in rows], bits)
            assert len(trace.levels) == len(scalar.levels)
            for level, scalar_level in zip(trace.levels, scalar.levels):
                assert level[batch_index].tolist() == scalar_level.rows
            assert int(trace.sum_rows[batch_index]) == scalar.sum_row
            assert int(trace.carry_rows[batch_index]) == scalar.carry_row

    @given(values=st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=64))
    def test_bit_count_matches_int_bit_count(self, values):
        arr = np.asarray(values, dtype=np.uint64)
        assert bit_count(arr).tolist() == [int(v).bit_count() for v in values]

    def test_chained_toggles_row_count_change(self):
        patterns = np.asarray([[3, 5], [3, 4]], dtype=np.uint64)
        # Baseline has an extra (disappearing) row, which must toggle fully.
        toggles = chained_toggle_counts(patterns, baseline=[3, 5, 7])
        assert toggles.tolist() == [3, 1]
        # A missing baseline row means the new row toggles in from zero.
        toggles = chained_toggle_counts(patterns, baseline=[3])
        assert toggles.tolist() == [2, 1]


class TestMultiplierEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(data=width_and_operands(), rounding=st.booleans())
    def test_stream_matches_scalar_walk(self, data, rounding):
        width, precision, xs, ys = data
        reference = BoothWallaceMultiplier(width, rounding=rounding)
        candidate = BoothWallaceMultiplier(width, rounding=rounding)
        reference.set_precision(precision)
        candidate.set_precision(precision)

        expected = reference.multiply_stream(xs, ys, batch=False)
        produced = candidate.multiply_stream(xs, ys, batch=True)
        assert produced == expected
        assert_same_activity(reference, candidate)
        assert reference._previous == candidate._previous

    @settings(max_examples=30, deadline=None)
    @given(data=width_and_operands(min_size=1, max_size=24))
    def test_scalar_and_batch_interleave(self, data):
        """Batch evaluation continues (and hands back) the toggle baseline."""
        width, precision, xs, ys = data
        reference = BoothWallaceMultiplier(width)
        candidate = BoothWallaceMultiplier(width)
        reference.set_precision(precision)
        candidate.set_precision(precision)
        split = len(xs) // 2

        reference.multiply_stream(xs, ys, batch=False)
        candidate.multiply_stream(xs[:split], ys[:split], batch=False)
        candidate.multiply_stream(xs[split:], ys[split:], batch=True)
        assert_same_activity(reference, candidate)
        assert reference._previous == candidate._previous

    def test_empty_and_single_element_batches(self):
        multiplier = BoothWallaceMultiplier(16)
        assert multiplier.multiply_stream([], [], batch=True) == []
        assert multiplier.activity.words == 0
        assert multiplier._previous == {}
        assert multiplier.multiply_stream([-321], [123], batch=True) == [-321 * 123]
        reference = BoothWallaceMultiplier(16)
        reference.multiply(-321, 123)
        assert_same_activity(reference, multiplier)

    def test_batch_result_reports_raw_toggles(self):
        reference = BoothWallaceMultiplier(16)
        candidate = BoothWallaceMultiplier(16)
        result = batch_multiply(candidate, [11, -22, 3333], [44, 55, -666])
        reference.multiply_stream([11, -22, 3333], [44, 55, -666], batch=False)
        for stage, raw in result.stage_raw_toggles.items():
            weight = reference.activity.stage_toggles[stage] / raw
            assert reference.activity.stage_toggles[stage] == pytest.approx(raw * weight)
        assert result.per_op_weighted_toggles.shape == (3,)
        assert float(result.per_op_weighted_toggles.sum()) == pytest.approx(
            reference.activity.total_weighted_toggles
        )

    @settings(max_examples=20, deadline=None)
    @given(data=width_and_operands(min_size=1, max_size=16))
    def test_out_of_range_operands_rejected(self, data):
        width, _, xs, ys = data
        multiplier = BoothWallaceMultiplier(width)
        _, hi = signed_range(width)
        with pytest.raises(ValueError):
            multiplier.multiply_stream(xs + [hi + 1], ys + [0], batch=True)

    def test_wide_datapath_falls_back_to_scalar(self):
        multiplier = BoothWallaceMultiplier(2 * MAX_BATCH_WIDTH)
        with pytest.raises(ValueError):
            batch_multiply(multiplier, [1], [1])
        assert multiplier.multiply_stream([3], [5], batch=True) == [15]


class TestSubwordEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        precision=st.sampled_from([16, 12, 8, 6, 4]),
        cycles=st.integers(min_value=0, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_stream_matches_scalar_cycles(self, precision, cycles, seed):
        reference = SubwordParallelMultiplier(16)
        candidate = SubwordParallelMultiplier(16)
        reference.set_precision(precision)
        candidate.set_precision(precision)
        lo, hi = signed_range(reference.mode.subword_bits)
        rng = np.random.default_rng(seed)
        count = cycles * reference.mode.parallelism
        xs = rng.integers(lo, hi + 1, size=count).tolist()
        ys = rng.integers(lo, hi + 1, size=count).tolist()

        expected = reference.multiply_stream(xs, ys, batch=False)
        produced = candidate.multiply_stream(xs, ys, batch=True)
        assert produced == expected
        assert_same_activity(reference, candidate)

        # A second stream keeps chaining off the same baselines.
        xs2 = rng.integers(lo, hi + 1, size=count).tolist()
        ys2 = rng.integers(lo, hi + 1, size=count).tolist()
        assert candidate.multiply_stream(xs2, ys2, batch=True) == reference.multiply_stream(
            xs2, ys2, batch=False
        )
        assert_same_activity(reference, candidate)

    def test_packed_interface_consistent_with_batch_stream(self):
        reference = SubwordParallelMultiplier(16)
        candidate = SubwordParallelMultiplier(16)
        reference.set_precision(4)
        candidate.set_precision(4)
        xs, ys = [1, -2, 3, -4], [5, 6, -7, -8]
        expected = reference.multiply(xs, ys)
        assert candidate.multiply_stream(xs, ys, batch=True) == expected
        assert_same_activity(reference, candidate)


class TestMacEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        precision=st.sampled_from([16, 12, 8, 4]),
        cycles=st.integers(min_value=0, max_value=10),
        sparsity=st.sampled_from([0.0, 0.3, 1.0]),
        guarding=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_dot_product_matches_scalar_cycles(self, precision, cycles, sparsity, guarding, seed):
        reference = MacUnit(16, guard_zero_operands=guarding)
        candidate = MacUnit(16, guard_zero_operands=guarding)
        reference.set_precision(precision)
        candidate.set_precision(precision)
        lo, hi = signed_range(reference.mode.subword_bits)
        rng = np.random.default_rng(seed)
        count = cycles * reference.mode.parallelism
        xs = rng.integers(lo, hi + 1, size=count)
        ys = rng.integers(lo, hi + 1, size=count)
        xs[rng.random(size=count) < sparsity] = 0
        xs, ys = xs.tolist(), ys.tolist()

        expected = reference.dot_product(xs, ys, batch=False)
        produced = candidate.dot_product(xs, ys, batch=True)
        assert produced == expected
        assert candidate.accumulators == reference.accumulators
        assert candidate.statistics.operations == reference.statistics.operations
        assert candidate.statistics.guarded == reference.statistics.guarded
        assert candidate.activity.words == reference.activity.words
        for stage, value in reference.activity.stage_toggles.items():
            if stage == "segmentation":
                # Per-cycle overheads are folded in one merge, which can
                # differ from the scalar running sum by float rounding only.
                assert candidate.activity.stage_toggles[stage] == pytest.approx(
                    value, rel=1e-12, abs=1e-12
                )
            else:
                assert candidate.activity.stage_toggles[stage] == value

    def test_fully_guarded_stream_preserves_multiplier_baseline(self):
        reference = MacUnit(16)
        candidate = MacUnit(16)
        warm_x, warm_y = [7, -9], [11, 13]
        reference.dot_product(warm_x, warm_y, batch=False)
        candidate.dot_product(warm_x, warm_y, batch=True)

        zeros = [0, 0, 0]
        ones = [1, 2, 3]
        assert candidate.dot_product(zeros, ones, batch=True) == reference.dot_product(
            zeros, ones, batch=False
        )
        assert candidate.statistics.guarded == reference.statistics.guarded == 3

        # The guarded stream must not have disturbed the toggle chain.
        follow_x, follow_y = [21, -5, 17], [-3, 19, 2]
        assert candidate.dot_product(follow_x, follow_y, batch=True) == reference.dot_product(
            follow_x, follow_y, batch=False
        )
        assert candidate.statistics.operations == reference.statistics.operations


class TestCharacterizationEquivalence:
    def test_batch_and_scalar_characterizations_identical(self):
        from repro.core.scaling import characterize_multiplier

        scalar = characterize_multiplier(samples=40, seed=99, batch=False)
        batch = characterize_multiplier(samples=40, seed=99, batch=True)
        assert scalar.profiles == batch.profiles
        assert scalar.reference_das_activity == batch.reference_das_activity
        assert scalar.reference_dvafs_activity == batch.reference_dvafs_activity
        assert scalar.baseline_energy_per_word_pj == batch.baseline_energy_per_word_pj


class TestSimdBatchExecution:
    @settings(max_examples=12, deadline=None)
    @given(
        simd_width=st.sampled_from([2, 8, 16]),
        sparsity=st.sampled_from([0.0, 0.5, 1.0]),
        precision=st.sampled_from([16, 12, 8, 4]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_batch_executor_matches_interpreter(self, simd_width, sparsity, precision, seed):
        from dataclasses import asdict

        from repro.simd import SimdProcessor, convolution_kernel, run_convolution

        workload = convolution_kernel(
            simd_width, input_length=24, taps=5, seed=seed, sparsity=sparsity
        )
        interpreter = SimdProcessor(simd_width)
        interpreter.set_precision(precision)
        expected_outputs, expected = run_convolution(interpreter, workload, batch=False)
        vectorized = SimdProcessor(simd_width)
        vectorized.set_precision(precision)
        outputs, result = run_convolution(vectorized, workload, batch=True)

        assert np.array_equal(outputs, expected_outputs)
        if result.parallelism == 1:
            # Packed modes reinterpret the preloaded words as N subwords, so
            # only the single-subword modes match the numpy reference.
            assert np.array_equal(outputs, workload.reference_output())
        assert asdict(result.counters) == asdict(expected.counters)
        assert (result.halted, result.precision_bits, result.parallelism) == (
            expected.halted,
            expected.precision_bits,
            expected.parallelism,
        )
        assert asdict(vectorized.vector_unit.counters) == asdict(interpreter.vector_unit.counters)
        assert asdict(vectorized.memory.counters) == asdict(interpreter.memory.counters)

    def test_batch_executor_covers_packed_modes(self):
        """The trace engine handles subword-parallel modes the old closed-form
        batch path rejected; counters stay bit-identical to the interpreter."""
        from dataclasses import asdict

        from repro.simd import SimdProcessor, convolution_kernel, run_convolution

        workload = convolution_kernel(4, input_length=16, taps=3)
        for precision in (8, 4):  # 2 x 8b and 4 x 4b packed modes
            interpreter = SimdProcessor(4)
            interpreter.set_precision(precision)
            expected_outputs, expected = run_convolution(interpreter, workload, batch=False)
            engine = SimdProcessor(4)
            engine.set_precision(precision)
            outputs, result = run_convolution(engine, workload, batch=True)
            assert result.parallelism == 16 // precision
            assert np.array_equal(outputs, expected_outputs)
            assert asdict(result.counters) == asdict(expected.counters)
            assert asdict(engine.vector_unit.counters) == asdict(interpreter.vector_unit.counters)

    def test_batch_executor_accepts_modified_programs(self):
        """Arbitrary programs run through the engine (vectorised or via the
        interpreter fallback) instead of being rejected."""
        from dataclasses import replace

        from repro.simd import SimdProcessor, convolution_kernel, execute_convolution_batch
        from repro.simd.assembler import assemble

        workload = convolution_kernel(4, input_length=16, taps=3)
        tampered = replace(workload, program=assemble("    nop\n    halt\n"))
        result = execute_convolution_batch(SimdProcessor(4), tampered)
        assert result.halted
        assert result.counters.instructions == 2


class TestNetworkBatchForward:
    @settings(max_examples=10, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=5),
        weight_bits=st.sampled_from([None, 8, 4, 1]),
        activation_bits=st.sampled_from([None, 8, 4]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_batched_forward_matches_per_sample(self, count, weight_bits, activation_bits, seed):
        from repro.nn.models import lenet5
        from repro.nn.quantization import QuantizationConfig

        network = lenet5()
        rng = np.random.default_rng(seed)
        samples = rng.normal(size=(count,) + network.input_shape)
        configs = {
            layer.name: QuantizationConfig(
                weight_bits=weight_bits, activation_bits=activation_bits
            )
            for layer in network.weighted_layers()
        }
        expected = network.forward_batch(samples, configs=configs, batch=False)
        produced = network.forward_batch(samples, configs=configs, batch=True)
        assert produced.shape == expected.shape
        np.testing.assert_allclose(produced, expected, rtol=1e-9, atol=1e-12)

    def test_grouped_strided_padded_conv_batch(self):
        from repro.nn.layers import Conv2D

        layer = Conv2D(4, 6, 3, stride=2, padding=1, groups=2, rng=np.random.default_rng(5))
        samples = np.random.default_rng(8).normal(size=(7, 4, 11, 9))
        expected = np.stack([layer.forward(sample) for sample in samples])
        produced = layer.forward_batch(samples)
        assert produced.shape == expected.shape
        np.testing.assert_allclose(produced, expected, rtol=1e-9, atol=1e-12)

    def test_empty_batch_flows_through(self):
        from repro.nn.models import lenet5

        network = lenet5()
        empty = np.zeros((0,) + network.input_shape)
        assert network.forward_batch(empty, batch=True).shape == (0, 10)


class TestTrainerVectorization:
    """Vectorised trainer vs the per-sample reference loops."""

    def _dataset(self):
        from repro.nn import synthetic_digits

        return synthetic_digits(train_samples=96, test_samples=24, size=16, seed=9)

    def test_forward_batch_matches_per_sample(self):
        from repro.nn import Trainer, lenet5

        trainer = Trainer(lenet5(input_size=16, seed=3))
        samples = self._dataset().train_images[:6]
        batched, caches = trainer._forward_batch(samples)
        assert len(caches) == len(trainer.network.layers)
        for index, sample in enumerate(samples):
            logits, _ = trainer._forward_sample(sample)
            np.testing.assert_allclose(batched[index], logits, rtol=1e-12, atol=1e-12)

    def test_training_trajectories_agree(self):
        """Losses and learned weights of the two paths agree to float
        tolerance (batch gradients are summed in a different order)."""
        from repro.nn import Trainer, lenet5

        dataset = self._dataset()
        outcomes = {}
        for vectorized in (False, True):
            network = lenet5(input_size=16, seed=3)
            trainer = Trainer(network, learning_rate=0.1, vectorized=vectorized)
            history = trainer.fit(dataset, epochs=2, batch_size=16, seed=3)
            outcomes[vectorized] = (history, network)
        reference, reference_network = outcomes[False]
        produced, produced_network = outcomes[True]
        np.testing.assert_allclose(produced.epoch_losses, reference.epoch_losses, rtol=1e-8)
        assert produced.epoch_accuracies == reference.epoch_accuracies
        for ours, theirs in zip(
            produced_network.weighted_layers(), reference_network.weighted_layers()
        ):
            np.testing.assert_allclose(ours.weights, theirs.weights, rtol=1e-6, atol=1e-9)
            np.testing.assert_allclose(ours.bias, theirs.bias, rtol=1e-6, atol=1e-9)

    def test_strided_padded_conv_backward(self):
        """col2im via np.add.at must accumulate overlapping patches exactly
        like the per-position reference loop (stride < kernel overlaps)."""
        from repro.nn.layers import Conv2D
        from repro.nn.training import (
            _conv_backward,
            _conv_backward_batch,
            _conv_forward,
            _conv_forward_batch,
        )

        layer = Conv2D(3, 5, 3, stride=1, padding=1, rng=np.random.default_rng(11))
        rng = np.random.default_rng(12)
        samples = rng.normal(size=(4, 3, 9, 9))
        out_shape = layer.output_shape(samples.shape[1:])
        upstream = rng.normal(size=(4,) + out_shape)

        batched_out, columns, padded_shape = _conv_forward_batch(layer, samples)
        entry_batch = {"weights": np.zeros_like(layer.weights), "bias": np.zeros_like(layer.bias)}
        grad_batch = _conv_backward_batch(
            layer, upstream, {"columns": columns, "padded_shape": padded_shape}, entry_batch
        )

        entry_ref = {"weights": np.zeros_like(layer.weights), "bias": np.zeros_like(layer.bias)}
        grads_ref = []
        for index in range(samples.shape[0]):
            out, cols, pshape = _conv_forward(layer, samples[index])
            np.testing.assert_allclose(batched_out[index], out, rtol=1e-12, atol=1e-12)
            grads_ref.append(
                _conv_backward(
                    layer, upstream[index], {"columns": cols, "padded_shape": pshape}, entry_ref
                )
            )
        np.testing.assert_allclose(grad_batch, np.stack(grads_ref), rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(entry_batch["weights"], entry_ref["weights"], rtol=1e-9)
        np.testing.assert_allclose(entry_batch["bias"], entry_ref["bias"], rtol=1e-9)

    def test_pool_backward_fancy_indexing(self):
        from repro.nn.layers import MaxPool2D
        from repro.nn.training import (
            _pool_backward,
            _pool_backward_batch,
            _pool_forward,
            _pool_forward_batch,
        )

        layer = MaxPool2D(2)
        rng = np.random.default_rng(21)
        samples = rng.normal(size=(3, 4, 7, 9))  # odd sizes exercise trimming
        outputs, argmax = _pool_forward_batch(layer, samples)
        upstream = rng.normal(size=outputs.shape)
        produced = _pool_backward_batch(
            layer, upstream, {"input": samples, "argmax": argmax}
        )
        for index in range(samples.shape[0]):
            out, arg = _pool_forward(layer, samples[index])
            np.testing.assert_allclose(outputs[index], out)
            reference = _pool_backward(
                layer, upstream[index], {"input": samples[index], "argmax": arg}
            )
            np.testing.assert_allclose(produced[index], reference)
