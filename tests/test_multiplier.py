"""Unit tests for the precision-gated Booth-Wallace multiplier (DAS/DVAS)."""

import numpy as np
import pytest

from repro.arithmetic.fixed_point import truncate_lsbs
from repro.arithmetic.multiplier import ActivityReport, BoothWallaceMultiplier
from repro.circuit.technology import TECH_40NM_LP_LVT


class TestFunctionalCorrectness:
    def test_exact_at_full_precision(self):
        multiplier = BoothWallaceMultiplier(16)
        rng = np.random.default_rng(0)
        for _ in range(150):
            x = int(rng.integers(-32768, 32768))
            y = int(rng.integers(-32768, 32768))
            assert multiplier.multiply(x, y) == x * y

    def test_exact_corner_cases(self):
        multiplier = BoothWallaceMultiplier(16)
        for x, y in [(-32768, -32768), (-32768, 32767), (32767, 32767), (0, -1), (1, -32768)]:
            assert multiplier.multiply(x, y) == x * y

    def test_gated_mode_multiplies_truncated_operands(self):
        multiplier = BoothWallaceMultiplier(16)
        multiplier.set_precision(8)
        rng = np.random.default_rng(1)
        for _ in range(50):
            x = int(rng.integers(-32768, 32768))
            y = int(rng.integers(-32768, 32768))
            expected = truncate_lsbs(x, 16, 8) * truncate_lsbs(y, 16, 8)
            assert multiplier.multiply(x, y) == expected

    def test_small_width_exhaustive(self):
        multiplier = BoothWallaceMultiplier(4)
        for x in range(-8, 8):
            for y in range(-8, 8):
                assert multiplier.multiply(x, y) == x * y

    def test_rejects_out_of_range_operand(self):
        multiplier = BoothWallaceMultiplier(8)
        with pytest.raises(ValueError):
            multiplier.multiply(200, 1)

    def test_odd_width_rejected(self):
        with pytest.raises(ValueError):
            BoothWallaceMultiplier(15)


class TestPrecisionConfiguration:
    def test_default_full_precision(self):
        assert BoothWallaceMultiplier(16).precision == 16

    def test_set_precision_bounds(self):
        multiplier = BoothWallaceMultiplier(16)
        with pytest.raises(ValueError):
            multiplier.set_precision(1)
        with pytest.raises(ValueError):
            multiplier.set_precision(17)

    def test_partial_product_rows_shrink(self):
        multiplier = BoothWallaceMultiplier(16)
        assert multiplier.partial_product_rows(16) == 8
        assert multiplier.partial_product_rows(4) == 2


class TestCriticalPath:
    def test_monotonic_in_precision(self):
        multiplier = BoothWallaceMultiplier(16)
        depths = [multiplier.critical_path_levels(p) for p in (4, 8, 12, 16)]
        assert depths == sorted(depths)

    def test_16b_meets_500mhz_at_nominal(self):
        multiplier = BoothWallaceMultiplier(16, technology=TECH_40NM_LP_LVT)
        path = multiplier.critical_path(16)
        assert path.meets_timing(TECH_40NM_LP_LVT.nominal_voltage, 2.0)

    def test_4b_slack_around_one_nanosecond(self):
        """Fig. 2b: the DAS 4 b mode has roughly 1 ns of positive slack."""
        multiplier = BoothWallaceMultiplier(16, technology=TECH_40NM_LP_LVT)
        slack = multiplier.critical_path(4).positive_slack_ns(1.1, 2.0)
        assert 0.7 <= slack <= 1.5


class TestActivity:
    def test_activity_accumulates_per_word(self):
        multiplier = BoothWallaceMultiplier(16)
        multiplier.multiply(1234, -4321)
        multiplier.multiply(-999, 777)
        assert multiplier.activity.words == 2
        assert multiplier.activity.total_weighted_toggles > 0

    def test_gated_mode_reduces_activity(self):
        """The DAS effect: activity drops by several x at 4 bits (k0)."""
        rng = np.random.default_rng(2)
        xs = rng.integers(-32768, 32768, 150).tolist()
        ys = rng.integers(-32768, 32768, 150).tolist()

        full = BoothWallaceMultiplier(16)
        full.multiply_stream(xs, ys)
        gated = BoothWallaceMultiplier(16)
        gated.set_precision(4)
        gated.multiply_stream(xs, ys)

        ratio = full.activity.toggles_per_word / gated.activity.toggles_per_word
        assert ratio > 4.0

    def test_take_activity_preserves_baseline(self):
        multiplier = BoothWallaceMultiplier(16)
        multiplier.multiply(100, 100)
        first = multiplier.take_activity()
        multiplier.multiply(100, 100)  # identical operands: almost no toggles
        second = multiplier.take_activity()
        assert second.total_weighted_toggles < first.total_weighted_toggles

    def test_energy_scales_with_voltage_squared(self):
        multiplier = BoothWallaceMultiplier(16)
        multiplier.multiply(1000, 2000)
        report = multiplier.activity
        high = report.energy_pj(TECH_40NM_LP_LVT, 1.1)
        low = report.energy_pj(TECH_40NM_LP_LVT, 0.55)
        assert high == pytest.approx(4.0 * low, rel=1e-6)


class TestActivityReport:
    def test_merge(self):
        a = ActivityReport(stage_toggles={"x": 1.0}, words=1)
        b = ActivityReport(stage_toggles={"x": 2.0, "y": 3.0}, words=2)
        merged = a.merged_with(b)
        assert merged.words == 3
        assert merged.stage_toggles == {"x": 3.0, "y": 3.0}

    def test_per_word_requires_words(self):
        with pytest.raises(ValueError):
            ActivityReport().toggles_per_word

    def test_negative_toggles_rejected(self):
        with pytest.raises(ValueError):
            ActivityReport().record("stage", -1.0)
