"""Tests for the analysis utilities and the experiment drivers (integration)."""

import numpy as np
import pytest

from repro.analysis import (
    EfficiencyReport,
    classification_accuracy,
    format_table,
    parameter_sweep,
    relative_rmse,
    rmse,
    snr_db,
    to_csv,
    top1_agreement,
)
from repro.experiments import EXPERIMENTS, fig3, fig8, table2


class TestMetrics:
    def test_rmse_basics(self):
        assert rmse(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0
        assert rmse(np.zeros(4), np.full(4, 2.0)) == pytest.approx(2.0)

    def test_relative_rmse(self):
        assert relative_rmse(np.zeros(4), np.full(4, 0.5), full_scale=2.0) == pytest.approx(0.25)

    def test_snr_infinite_for_exact(self):
        assert snr_db(np.array([1.0, -1.0]), np.array([1.0, -1.0])) == float("inf")

    def test_snr_value(self):
        reference = np.array([1.0, 1.0, 1.0, 1.0])
        noisy = reference + 0.1
        assert snr_db(reference, noisy) == pytest.approx(20.0, abs=0.1)

    def test_top1_agreement(self):
        a = np.array([[1.0, 0.0], [0.0, 1.0]])
        b = np.array([[0.9, 0.1], [0.6, 0.4]])
        assert top1_agreement(a, b) == pytest.approx(0.5)

    def test_classification_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert classification_accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_efficiency_report(self):
        report = EfficiencyReport(effective_gops=76.0, power_mw=18.0)
        assert report.tops_per_watt == pytest.approx(4.22, rel=0.01)
        assert report.energy_per_op_pj == pytest.approx(18.0 / 76.0, rel=1e-6)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.34567}, {"a": 10, "b": 0.001}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "a" in text.splitlines()[1]
        assert len(text.splitlines()) == 5

    def test_empty_table(self):
        assert "(empty)" in format_table([], title="none")

    def test_csv(self):
        rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
        text = to_csv(rows)
        assert text.splitlines()[0] == "x,y"
        assert len(text.splitlines()) == 3

    def test_parameter_sweep(self):
        result = parameter_sweep({"a": [1, 2], "b": [3]}, lambda a, b: {"sum": a + b})
        assert len(result) == 2
        assert result.filter(a=2).column("sum") == [5]


class TestExperimentDrivers:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "table2",
            "fig6",
            "fig8",
            "table3",
        }

    def test_table1_rows(self, characterization):
        rows = EXPERIMENTS["table1"].run(characterization=characterization)
        assert [row["precision"] for row in rows] == [16, 12, 8, 4]
        assert rows[-1]["N"] == 4

    def test_fig2_rows(self, characterization):
        rows = EXPERIMENTS["fig2"].run(characterization=characterization)
        by_precision = {row["precision"]: row for row in rows}
        assert by_precision[4]["frequency_mhz (2a)"] == pytest.approx(125.0)
        assert by_precision[4]["dvafs_slack_ns (2b)"] > by_precision[4]["das_slack_ns (2b)"]
        assert by_precision[4]["dvafs_voltage (2c)"] < by_precision[4]["dvas_voltage (2c)"]

    def test_fig3a_normalisation(self, characterization):
        rows = fig3.run_fig3a(characterization=characterization)
        das16 = [r for r in rows if r["technique"] == "DAS" and r["precision"] == 16][0]
        assert das16["relative_energy"] == pytest.approx(1.0, abs=0.05)

    def test_fig3b_dvafs_reaches_lowest_energy(self, characterization):
        rows = fig3.run_fig3b(characterization=characterization, rmse_samples=400)
        dvafs_min = min(r["relative_energy"] for r in rows if r["scheme"] == "DVAFS")
        others_min = min(r["relative_energy"] for r in rows if r["scheme"] != "DVAFS")
        assert dvafs_min < others_min

    def test_fig4_dvafs_beats_dvas_at_4b(self):
        rows = EXPERIMENTS["fig4"].run(simd_widths=(8,), input_length=24, taps=5)
        by_key = {(r["technique"], r["precision"]): r["relative_energy_per_word"] for r in rows}
        assert by_key[("DVAFS", 4)] < by_key[("DVAS", 4)] < by_key[("DAS", 4)]
        assert by_key[("DVAFS", 4)] < 0.2

    def test_table2_totals_near_paper(self):
        rows = table2.run(simd_widths=(8,), input_length=24, taps=5)
        by_mode = {row["mode"]: row for row in rows}
        assert by_mode["1x16b"]["P [mW]"] == pytest.approx(36.0, rel=0.05)
        assert by_mode["4x4b"]["P [mW]"] < by_mode["2x8b"]["P [mW]"]

    def test_fig8_report_runs(self):
        text = fig8.report()
        assert "DVAFS" in text and "paper" in text

    def test_table3_rows_and_totals(self):
        rows = EXPERIMENTS["table3"].run()
        totals = [row for row in rows if "TOTAL" in str(row["layer"])]
        assert len(totals) == 3
        lenet_row = [r for r in rows if r["layer"] == "LeNet1"][0]
        assert lenet_row["mode"] == "4x4b"
        assert lenet_row["P [mW]"] < 15
