"""Unit and integration tests for the Envision chip model."""

import pytest

from repro.envision import (
    EnvisionChip,
    EnvisionPowerModel,
    EnvisionScheduler,
    LayerWorkload,
    PAPER_TABLE_III_WORKLOADS,
    mode_for_precision,
)


class TestModes:
    def test_mode_selection(self):
        assert mode_for_precision(4).label == "4x4b"
        assert mode_for_precision(5).label == "2x8b"
        assert mode_for_precision(9).label == "1x16b"

    def test_too_many_bits_rejected(self):
        with pytest.raises(ValueError):
            mode_for_precision(20)

    def test_constant_throughput_operating_points(self):
        mode = mode_for_precision(4)
        point = mode.operating_point(constant_throughput=True)
        assert point.frequency_mhz == pytest.approx(50.0)
        assert point.as_voltage == pytest.approx(0.65)
        assert point.throughput_mops == pytest.approx(200.0)


class TestPowerModel:
    def test_reference_point(self):
        model = EnvisionPowerModel()
        breakdown = model.power(
            precision=16, parallelism=1, frequency_mhz=200.0, as_voltage=1.1, nas_voltage=1.1
        )
        assert breakdown.total_mw == pytest.approx(300.0, rel=1e-6)
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_sparsity_reduces_power(self):
        model = EnvisionPowerModel()
        dense = model.power(
            precision=8, parallelism=2, frequency_mhz=100.0, as_voltage=0.8, nas_voltage=0.8
        )
        sparse = model.power(
            precision=8,
            parallelism=2,
            frequency_mhz=100.0,
            as_voltage=0.8,
            nas_voltage=0.8,
            weight_sparsity=0.3,
            input_sparsity=0.7,
        )
        assert sparse.total_mw < dense.total_mw

    def test_actual_precision_gating_inside_mode(self):
        model = EnvisionPowerModel()
        full = model.power(
            precision=16, parallelism=1, frequency_mhz=200.0, as_voltage=1.03, nas_voltage=1.03
        )
        gated = model.power(
            precision=16,
            parallelism=1,
            frequency_mhz=200.0,
            as_voltage=1.03,
            nas_voltage=1.03,
            actual_precision=9,
        )
        assert gated.total_mw < full.total_mw

    def test_actual_precision_cannot_exceed_mode(self):
        model = EnvisionPowerModel()
        with pytest.raises(ValueError):
            model.power(
                precision=8,
                parallelism=2,
                frequency_mhz=100.0,
                as_voltage=0.8,
                nas_voltage=0.8,
                actual_precision=12,
            )

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            EnvisionPowerModel(fractions={"mac_array": 0.5, "accumulation": 0.1, "memory": 0.1, "control": 0.1})


class TestChip:
    def test_peak_throughput_figures(self):
        chip = EnvisionChip()
        assert chip.specs.peak_gops(1) == pytest.approx(102.4, rel=0.01)
        assert chip.specs.peak_gops(4) == pytest.approx(409.6, rel=0.01)
        assert chip.specs.effective_gops(1) == pytest.approx(74.8, rel=0.01)

    def test_fig8_headline_gains(self):
        """Constant-throughput DVAFS beats DAS by ~7x and DVAS by ~4x at 4 bits."""
        from repro.experiments.fig8 import headline_gains, run

        gains = headline_gains(run())
        assert 4.0 <= gains["dvafs_vs_das_4b"] <= 11.0
        assert 2.5 <= gains["dvafs_vs_dvas_4b"] <= 7.0
        assert gains["dvafs_16b_to_4b_range"] > 10.0

    def test_constant_throughput_cheaper_than_constant_frequency(self):
        chip = EnvisionChip()
        const_f = {
            (r["technique"], r["precision"]): r["relative_energy_per_word"]
            for r in chip.energy_per_word_curve(constant_throughput=False)
        }
        const_t = {
            (r["technique"], r["precision"]): r["relative_energy_per_word"]
            for r in chip.energy_per_word_curve(constant_throughput=True)
        }
        assert const_t[("DVAFS", 4)] < const_f[("DVAFS", 4)]

    def test_efficiency_range_covers_paper_span(self):
        """Envision spans roughly 0.3 -> 4 TOPS/W from 1x16b to 4x4b."""
        chip = EnvisionChip()
        rows = chip.energy_per_word_curve(constant_throughput=True)
        efficiencies = {
            (r["technique"], r["precision"]): r["tops_per_watt"] for r in rows
        }
        assert 0.2 <= efficiencies[("DAS", 16)] <= 0.4
        assert 3.0 <= efficiencies[("DVAFS", 4)] <= 7.0

    def test_run_layer_energy_scales_with_macs(self):
        chip = EnvisionChip()
        small = chip.run_layer(name="s", macs=1_000_000, weight_bits=8, activation_bits=8)
        large = chip.run_layer(name="l", macs=2_000_000, weight_bits=8, activation_bits=8)
        assert large.energy_uj == pytest.approx(2 * small.energy_uj, rel=1e-6)


class TestScheduler:
    def test_table3_totals_within_factor_two(self):
        scheduler = EnvisionScheduler()
        expectations = {"VGG16": (26.0, 2.0), "AlexNet": (44.0, 1.8), "LeNet-5": (25.0, 3.0)}
        for network, workloads in PAPER_TABLE_III_WORKLOADS.items():
            schedule = scheduler.schedule_network(network, workloads)
            paper_power, paper_eff = expectations[network]
            assert schedule.average_power_mw == pytest.approx(paper_power, rel=0.6)
            assert schedule.tops_per_watt == pytest.approx(paper_eff, rel=0.6)

    def test_lenet_most_efficient_network(self):
        """Simple tasks run at higher efficiency than complex ones (the paper's point)."""
        scheduler = EnvisionScheduler()
        efficiency = {
            name: scheduler.schedule_network(name, workloads).tops_per_watt
            for name, workloads in PAPER_TABLE_III_WORKLOADS.items()
        }
        assert efficiency["LeNet-5"] > efficiency["AlexNet"]

    def test_mode_assignment_follows_precision(self):
        scheduler = EnvisionScheduler()
        schedule = scheduler.schedule_network("AlexNet", PAPER_TABLE_III_WORKLOADS["AlexNet"])
        modes = {layer.layer: layer.mode_label for layer in schedule.layers}
        assert modes["AlexNet1"] == "2x8b"
        assert modes["AlexNet3"] == "1x16b"

    def test_per_layer_beats_uniform_worst_case(self):
        scheduler = EnvisionScheduler()
        workloads = PAPER_TABLE_III_WORKLOADS["LeNet-5"]
        adaptive = scheduler.schedule_network("LeNet-5", workloads)
        uniform = scheduler.schedule_uniform("LeNet-5", workloads)
        assert adaptive.total_energy_uj < uniform.total_energy_uj

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            EnvisionScheduler().schedule_network("empty", [])

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            LayerWorkload("bad", macs=-1, weight_bits=8, activation_bits=8)
