"""Concurrent multi-tenant store suite: backends, fill claims, eviction.

Covers the :class:`~repro.runner.backends.StoreBackend` seam both stores
share -- the disk and in-memory backends must satisfy the same contract
-- plus the concurrency machinery layered on top: first-writer-wins fill
claims (exactly-once compute under many concurrent writers, stale-claim
takeover when a winner dies), LRU eviction under a byte budget (in-flight
fills, quarantine sidecars and the freshest entry are never evicted) and
the append-only stats log that concurrent recorders cannot clobber.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
import uuid

import pytest

from repro.analysis.sweep import SweepResult
from repro.runner.artifacts import (
    ArtifactStore,
    StoreStats,
    load_stats,
    produce_into,
    record_stats,
    reset_stats,
)
from repro.runner.backends import (
    ClaimTicket,
    DiskBackend,
    MemoryBackend,
    evict_lru,
    wait_for_fill,
)
from repro.runner.cache import CacheEntry, ResultCache, cache_key
from repro.runner.cli import main
from repro.runner.registry import ExperimentSpec
from repro.runner.service import ExperimentRunner


def _backend(kind, tmp_path):
    return DiskBackend(tmp_path / "store") if kind == "disk" else MemoryBackend()


@pytest.fixture(params=["disk", "memory", "remote"])
def backend(request, tmp_path):
    """One StoreBackend implementation per param: on-disk, in-memory, networked."""
    if request.param != "remote":
        yield _backend(request.param, tmp_path)
        return
    from repro.runner.netstore import RemoteBackend, StoreServer

    with StoreServer(tmp_path / "server") as server:
        remote = RemoteBackend(server.url)
        try:
            yield remote
        finally:
            remote.close()


def _result_entry(experiment="toy", rows=None, pad=0):
    payload = rows if rows is not None else [{"a": 1}]
    provenance = {"pad": "x" * pad} if pad else {}
    return CacheEntry(
        experiment=experiment,
        params={},
        fingerprint="f" * 64,
        result=SweepResult(records=payload),
        elapsed_seconds=0.0,
        provenance=provenance,
    )


# -- the backend contract (every implementation, including over the wire) -----------


class TestBackendContract:
    def test_put_get_delete_round_trip(self, backend):
        assert backend.get("ns", "a.json") is None
        backend.put("ns", "a.json", b"payload")
        assert backend.get("ns", "a.json") == b"payload"
        stat = backend.stat("ns", "a.json")
        assert stat is not None and stat.size_bytes == len(b"payload")
        assert backend.delete("ns", "a.json") is True
        assert backend.get("ns", "a.json") is None
        assert backend.delete("ns", "a.json") is False  # already gone

    def test_iter_is_sorted_and_skips_reserved_namespaces(self, backend):
        backend.put("beta", "2.json", b"b")
        backend.put("alpha", "1.json", b"a")
        backend.put("corrupt", "poisoned.json", b"x")
        backend.put("artifacts", "nested.pkl", b"x")
        backend.put("jobs", "journal.json", b"x")
        assert list(backend.iter()) == [("alpha", "1.json"), ("beta", "2.json")]
        assert list(backend.iter("alpha")) == [("alpha", "1.json")]

    def test_access_stamps_order_entries_and_get_refreshes(self, backend):
        backend.put("ns", "old.json", b"1")
        time.sleep(0.01)
        backend.put("ns", "new.json", b"2")
        time.sleep(0.01)
        backend.get("ns", "old.json")  # refresh: now newer than "new"
        assert (
            backend.stat("ns", "old.json").accessed_unix
            > backend.stat("ns", "new.json").accessed_unix
        )
        # touch=False reads (listings) must not refresh the LRU stamp.
        before = backend.stat("ns", "new.json").accessed_unix
        backend.get("ns", "new.json", touch=False)
        assert backend.stat("ns", "new.json").accessed_unix == before

    def test_claim_is_first_writer_wins_and_put_releases(self, backend):
        assert backend.claim("ns", "k.json") is True
        assert backend.claim("ns", "k.json") is False  # second claimer loses
        ticket = backend.claim_info("ns", "k.json")
        assert ticket is not None and ticket.pid == os.getpid()
        assert not ticket.is_stale()  # we are demonstrably alive
        backend.put("ns", "k.json", b"filled")  # the fill clears the claim
        assert backend.claim_info("ns", "k.json") is None
        assert backend.claim("ns", "k.json") is True  # reclaimable afterwards
        assert backend.release("ns", "k.json") is True

    def test_release_with_owner_refuses_foreign_tickets(self, backend):
        assert backend.claim("ns", "k.json")
        stranger = ClaimTicket(pid=1, host="elsewhere", created_unix=123.0)
        assert backend.release("ns", "k.json", owner=stranger) is False
        assert backend.claim_info("ns", "k.json") is not None  # still held
        mine = backend.claim_info("ns", "k.json")
        assert backend.release("ns", "k.json", owner=mine) is True

    def test_quarantine_hides_the_entry(self, backend):
        backend.put("ns", "bad.json", b"garbage")
        assert backend.quarantine("ns", "bad.json") is True
        assert backend.get("ns", "bad.json") is None
        assert list(backend.iter()) == []


class TestDiskLayout:
    def test_sidecars_are_hidden_and_cleaned_up(self, tmp_path):
        backend = DiskBackend(tmp_path)
        backend.claim("ns", "k.json")
        backend.put("ns", "k.json", b"blob")
        names = sorted(path.name for path in (tmp_path / "ns").iterdir())
        assert names == [".k.json.atime", "k.json"]  # claim cleared by the put
        assert list(backend.iter()) == [("ns", "k.json")]  # dotfiles never listed
        backend.delete("ns", "k.json")
        assert list((tmp_path / "ns").iterdir()) == []

    def test_disk_quarantine_moves_bytes_for_forensics(self, tmp_path):
        backend = DiskBackend(tmp_path)
        backend.put("ns", "bad.json", b"garbage")
        backend.quarantine("ns", "bad.json")
        assert (tmp_path / "corrupt" / "ns" / "bad.json").read_bytes() == b"garbage"


# -- stale-claim detection ----------------------------------------------------------


def _dead_pid():
    """A pid with no live process (freshly exited child)."""
    process = multiprocessing.Process(target=lambda: None)
    process.start()
    process.join()
    pid = process.pid
    for _ in range(100):
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return pid
        time.sleep(0.01)
    raise AssertionError(f"pid {pid} still probeable after exit")  # pragma: no cover


class TestStaleClaims:
    def test_dead_owner_on_this_host_is_stale(self):
        import repro.runner.backends as backends

        ticket = ClaimTicket(pid=_dead_pid(), host=backends._HOST, created_unix=time.time())
        assert ticket.is_stale()

    def test_live_owner_is_not_stale_until_ttl(self):
        import repro.runner.backends as backends

        ticket = ClaimTicket(pid=os.getpid(), host=backends._HOST, created_unix=time.time())
        assert not ticket.is_stale()
        wedged = ClaimTicket(
            pid=os.getpid(), host=backends._HOST, created_unix=time.time() - 10.0
        )
        assert wedged.is_stale(ttl_seconds=5.0)  # alive but wedged past the TTL

    def test_foreign_host_falls_back_to_ttl(self):
        fresh = ClaimTicket(pid=1, host="another-box", created_unix=time.time())
        assert not fresh.is_stale(ttl_seconds=60.0)
        old = ClaimTicket(pid=1, host="another-box", created_unix=time.time() - 120.0)
        assert old.is_stale(ttl_seconds=60.0)

    def test_torn_ticket_ages_by_file_mtime(self, tmp_path):
        # A ticket with unreadable bytes is either mid-write (fresh: must
        # NOT be stolen) or truly torn by a killed writer (expires by TTL).
        backend = DiskBackend(tmp_path)
        token = tmp_path / "ns" / ".k.json.claim"
        token.parent.mkdir(parents=True)
        token.write_text("{torn bytes")
        ticket = backend.claim_info("ns", "k.json")
        assert ticket is not None and not ticket.is_stale(ttl_seconds=60.0)
        old = time.time() - 120.0
        os.utime(token, (old, old))
        ticket = backend.claim_info("ns", "k.json")
        assert ticket is not None and ticket.is_stale(ttl_seconds=60.0)


# -- wait_for_fill ------------------------------------------------------------------


class TestWaitForFill:
    def test_waiter_reads_the_winners_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "a" * 64
        assert cache.claim("toy", key)

        def fill():
            time.sleep(0.15)
            cache.put(key, _result_entry(rows=[{"winner": 1}]))

        filler = threading.Thread(target=fill)
        filler.start()
        try:
            entry = wait_for_fill(cache, "toy", key)
        finally:
            filler.join()
        assert entry is not None and entry.rows == [{"winner": 1}]

    def test_stale_claim_is_taken_over(self, tmp_path, monkeypatch):
        import repro.runner.backends as backends

        cache = ResultCache(tmp_path)
        key = "b" * 64
        # A dead process claimed the address and never filled it.
        token = tmp_path / "toy" / f".{key}.json.claim"
        token.parent.mkdir(parents=True)
        token.write_text(
            json.dumps(
                {"pid": _dead_pid(), "host": backends._HOST, "created_unix": time.time()}
            )
        )
        assert wait_for_fill(cache, "toy", key) is None  # we must compute ...
        ticket = cache.claim_info("toy", key)
        assert ticket is not None and ticket.pid == os.getpid()  # ... owning the claim

    def test_takeover_rechecks_for_a_finished_fill(self, tmp_path):
        # The filled-then-released window: the winner's entry landed but the
        # waiter read "no claim" first.  The re-check must find the entry
        # instead of recomputing it.
        cache = ResultCache(tmp_path)
        key = "c" * 64
        cache.put(key, _result_entry(rows=[{"done": 1}]))
        entry = wait_for_fill(cache, "toy", key)
        assert entry is not None and entry.rows == [{"done": 1}]
        assert cache.claim_info("toy", key) is None  # no claim left behind

    def test_blown_deadline_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CLAIM_WAIT_SECONDS", "0.15")
        cache = ResultCache(tmp_path)
        key = "d" * 64
        assert cache.claim("toy", key)  # a live claim that never fills
        start = time.monotonic()
        assert wait_for_fill(cache, "toy", key, poll_seconds=0.01) is None
        assert time.monotonic() - start < 5.0


# -- exactly-once concurrent fill ---------------------------------------------------


class TestConcurrentFill:
    def test_threads_racing_one_address_compute_once(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []

        def producer(*, x):
            calls.append(x)
            time.sleep(0.1)  # hold the claim long enough for losers to wait
            return {"value": x * 2}

        results = [None] * 6
        def fill(slot):
            results[slot] = produce_into(store, "demo", {"x": 21}, producer)

        threads = [threading.Thread(target=fill, args=(slot,)) for slot in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert calls == [21]  # exactly one compute
        assert all(entry.payload == {"value": 42} for entry in results)
        drained = store.drain_stats()
        assert drained["claims"] == 1
        assert drained["claim_waits"] == 5

    def test_processes_racing_one_address_compute_once(self, tmp_path):
        root = tmp_path / "store"
        side_effects = tmp_path / "computes.log"
        processes = [
            multiprocessing.Process(target=_process_fill, args=(root, side_effects))
            for _ in range(4)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        # The producer ran in exactly one process ...
        assert len(side_effects.read_text().splitlines()) == 1
        # ... and every process left no claim behind.
        store = ArtifactStore(root)
        entry = store.get("shared", "e" * 64)
        assert entry is not None and entry.payload == {"value": 14}


class TestRemoteCoordination:
    """Fleet-level claim semantics through the networked backend."""

    def test_stale_claim_takeover_through_remote(self, tmp_path):
        import repro.runner.backends as backends
        from repro.runner.netstore import RemoteBackend, StoreServer

        with StoreServer(tmp_path / "server") as server:
            key = "b" * 64
            # A dead client claimed the address on the server and never filled.
            token = server.root / "toy" / f".{key}.json.claim"
            token.parent.mkdir(parents=True)
            token.write_text(
                json.dumps(
                    {"pid": _dead_pid(), "host": backends._HOST, "created_unix": time.time()}
                )
            )
            cache = ResultCache(backend=RemoteBackend(server.url))
            ticket = cache.claim_info("toy", key)
            assert ticket is not None and ticket.is_stale()  # visible over the wire
            assert wait_for_fill(cache, "toy", key) is None  # we must compute ...
            ticket = cache.claim_info("toy", key)
            assert ticket is not None and ticket.pid == os.getpid()  # ... owning the claim

    def test_threads_racing_one_address_through_remote_compute_once(self, tmp_path):
        from repro.runner.netstore import RemoteBackend, StoreServer

        with StoreServer(tmp_path / "server") as server:
            # Six contenders, each its own connection -- the claim ticket on
            # the server arbitrates exactly-once across all of them.
            stores = [
                ArtifactStore(backend=RemoteBackend(server.url)) for _ in range(6)
            ]
            calls = []

            def producer(*, x):
                calls.append(x)
                time.sleep(0.1)  # hold the claim long enough for losers to wait
                return {"value": x * 2}

            results = [None] * len(stores)

            def fill(slot):
                results[slot] = produce_into(stores[slot], "demo", {"x": 21}, producer)

            threads = [
                threading.Thread(target=fill, args=(slot,)) for slot in range(len(stores))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert calls == [21]  # exactly one compute, fleet-wide
            assert all(entry.payload == {"value": 42} for entry in results)
            drained = [store.drain_stats() for store in stores]
            assert sum(d["claims"] for d in drained) == 1
            assert sum(d["claim_waits"] for d in drained) == len(stores) - 1


def _process_fill(root, side_effects):
    """Module-level for pickling; one contender in the multi-process race."""
    store = ArtifactStore(root)

    def producer(*, x):
        with open(side_effects, "a") as handle:  # O_APPEND: one line per compute
            handle.write(f"{os.getpid()}\n")
        time.sleep(0.2)
        return {"value": x * 2}

    entry = produce_into(store, "shared", {"x": 7}, producer, key="e" * 64)
    assert entry.payload == {"value": 14}


# -- bounded stores / LRU eviction --------------------------------------------------


class TestEviction:
    def _fill(self, backend, count, size=100):
        for index in range(count):
            backend.put("ns", f"{index}.json", b"x" * size)
            time.sleep(0.01)  # distinct mtimes on coarse filesystems

    @pytest.mark.parametrize("kind", ["disk", "memory"])
    def test_least_recently_used_goes_first(self, kind, tmp_path):
        backend = _backend(kind, tmp_path)
        self._fill(backend, 4)
        backend.get("ns", "0.json")  # refresh the oldest entry
        evicted, freed = evict_lru(backend, 250)
        assert (evicted, freed) == (2, 200)
        survivors = [filename for _ns, filename in backend.iter()]
        assert survivors == ["0.json", "3.json"]  # refreshed + newest survive

    @pytest.mark.parametrize("kind", ["disk", "memory"])
    def test_under_budget_is_a_no_op(self, kind, tmp_path):
        backend = _backend(kind, tmp_path)
        self._fill(backend, 3)
        assert evict_lru(backend, 10_000) == (0, 0)

    def test_oversized_protected_entry_survives(self, tmp_path):
        backend = DiskBackend(tmp_path)
        backend.put("ns", "huge.json", b"x" * 1000)
        # Protected (just written): the store is bounded by
        # max(budget, largest entry), never emptied below one entry.
        assert evict_lru(backend, 100, keep={("ns", "huge.json")}) == (0, 0)
        assert backend.stat("ns", "huge.json") is not None
        # Unprotected on a later write, it is fair game.
        assert evict_lru(backend, 100) == (1, 1000)

    def test_claimed_entries_are_never_evicted(self, tmp_path):
        backend = DiskBackend(tmp_path)
        self._fill(backend, 2)
        backend.put("ns", "filling.json", b"y" * 100)
        backend.claim("ns", "filling.json")  # an in-flight refill owns it
        evicted, _freed = evict_lru(backend, 100)
        assert evicted == 2
        assert [filename for _ns, filename in backend.iter()] == ["filling.json"]

    def test_quarantine_is_exempt_from_the_budget(self, tmp_path):
        backend = DiskBackend(tmp_path)
        backend.put("ns", "bad.json", b"x" * 10_000)
        backend.quarantine("ns", "bad.json")
        backend.put("ns", "good.json", b"x" * 50)
        # The quarantined 10k does not count toward (or get freed for) the cap.
        assert evict_lru(backend, 100, keep={("ns", "good.json")}) == (0, 0)
        assert (tmp_path / "corrupt" / "ns" / "bad.json").exists()

    def test_eviction_races_concurrent_reads_safely(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=2_000)
        keys = [cache_key("toy", json.dumps({"i": i}), "f" * 64) for i in range(12)]
        failures = []

        def reader():
            for _ in range(200):
                for key in keys:
                    entry = cache.get("toy", key)  # entry or miss, never an error
                    if entry is not None and entry.experiment != "toy":
                        failures.append(key)

        thread = threading.Thread(target=reader)
        thread.start()
        for key in keys:  # writes drive eviction under the reader's feet
            cache.put(key, _result_entry(pad=400))
        thread.join()
        assert failures == []
        drained = cache.drain_stats()
        assert drained["evictions"] > 0
        assert drained["corrupt"] == 0  # a raced read is a miss, never corruption

    def test_result_cache_enforces_budget_with_counters(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1_000)
        keys = [cache_key("toy", json.dumps({"i": i}), "f" * 64) for i in range(6)]
        for key in keys:
            cache.put(key, _result_entry(pad=400))
        listing = cache.ls()
        assert 1 <= len(listing) <= 2  # bounded by the budget
        assert sum(row["size_bytes"] for row in listing) <= 1_000
        assert keys[-1] in {row["key"] for row in listing}  # newest always kept
        drained = cache.drain_stats()
        assert drained["evictions"] == 6 - len(listing)
        assert drained["evicted_bytes"] > 0

    def test_env_budget_is_wired(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        assert ResultCache(tmp_path).max_bytes == 12345
        monkeypatch.setenv("REPRO_ARTIFACTS_MAX_BYTES", "999")
        assert ArtifactStore(tmp_path).max_bytes == 999
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")  # 0/invalid = unbounded
        assert ResultCache(tmp_path).max_bytes is None


# -- warm replay under eviction pressure --------------------------------------------


TOY_SOURCE = '''\
"""Toy experiment driver for store tests (milliseconds per run)."""

PARAMS = {"x": 2}


def run(*, x=2):
    return [{"x": x, "y": x * x}]


def render(rows):
    return "\\n".join(f"{row['x']} -> {row['y']}" for row in rows)
'''


def _toy_runner(tmp_path, monkeypatch, *, cache=None):
    import importlib

    module_dir = tmp_path / "modules"
    module_dir.mkdir(exist_ok=True)
    module_name = f"storetoy_{uuid.uuid4().hex[:8]}"
    (module_dir / f"{module_name}.py").write_text(TOY_SOURCE)
    monkeypatch.syspath_prepend(str(module_dir))
    module = importlib.import_module(module_name)
    spec = ExperimentSpec.from_module("toy", module)
    return ExperimentRunner(
        cache=cache if cache is not None else ResultCache(tmp_path / "cache"),
        registry={"toy": spec},
    )


class TestRunnerUnderPressure:
    def test_warm_replay_is_bit_identical_under_eviction(self, tmp_path, monkeypatch):
        # A cap small enough to evict most entries: warm reruns recompute
        # the evicted ones and must reproduce the cold rows byte-for-byte.
        runner = _toy_runner(
            tmp_path, monkeypatch, cache=ResultCache(tmp_path / "cache", max_bytes=2_000)
        )
        requests = [("toy", {"x": x}) for x in range(8)]
        cold = runner.run_many(list(requests))
        warm = runner.run_many(list(requests))
        assert json.dumps([r.rows for r in warm]) == json.dumps([r.rows for r in cold])
        counters = load_stats(runner.cache.root)
        assert counters.result_evictions > 0

    def test_memory_backed_runner_needs_no_disk(self, tmp_path, monkeypatch):
        runner = _toy_runner(
            tmp_path, monkeypatch, cache=ResultCache(backend=MemoryBackend())
        )
        assert runner.cache.root is None
        (cold,) = runner.run_many([("toy", {"x": 6})])
        (warm,) = runner.run_many([("toy", {"x": 6})])
        assert cold.cached is False and warm.cached is True
        assert warm.rows == cold.rows == [{"x": 6, "y": 36}]
        assert list(tmp_path.glob("cache*")) == []  # nothing persisted anywhere

    def test_claims_and_misses_balance_in_counters(self, tmp_path, monkeypatch):
        runner = _toy_runner(tmp_path, monkeypatch)
        runner.run_many([("toy", {"x": 1}), ("toy", {"x": 2}), ("toy", {"x": 1})])
        counters = load_stats(runner.cache.root)
        # Two unique cold fills, each computed under a won claim; the
        # duplicate request neither claims nor waits.
        assert counters.result_misses == 3
        assert counters.result_claims == 2
        assert counters.result_claim_waits == 0


# -- stats: append-only log ---------------------------------------------------------


class TestStatsLog:
    def test_concurrent_recorders_never_lose_increments(self, tmp_path):
        # Regression: the old read-modify-write snapshot dropped concurrent
        # deltas; the O_APPEND log must keep every one of them.
        threads = [
            threading.Thread(
                target=lambda: record_stats(tmp_path, StoreStats(result_hits=1))
            )
            for _ in range(32)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert load_stats(tmp_path).result_hits == 32

    def test_legacy_snapshot_still_counts(self, tmp_path):
        (tmp_path / "_stats.json").write_text(json.dumps({"result_hits": 5}))
        total = record_stats(tmp_path, StoreStats(result_hits=2, result_claims=1))
        assert total.result_hits == 7
        assert total.result_claims == 1

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        record_stats(tmp_path, StoreStats(artifact_hits=3))
        with open(tmp_path / "_stats.jsonl", "a") as handle:
            handle.write('{"artifact_hits": 99')  # killed mid-append
        assert load_stats(tmp_path).artifact_hits == 3

    def test_reset_clears_log_and_snapshot(self, tmp_path):
        (tmp_path / "_stats.json").write_text(json.dumps({"result_hits": 5}))
        record_stats(tmp_path, StoreStats(result_hits=2))
        reset_stats(tmp_path)
        assert load_stats(tmp_path).result_hits == 0


# -- CLI surface --------------------------------------------------------------------


class TestCliBudget:
    def test_cache_max_bytes_flag_bounds_the_store(self, tmp_path, capsys):
        # Big enough for one table1 entry (~1.3k) but never two.
        common = ["--cache-dir", str(tmp_path), "--cache-max-bytes", "2000"]
        assert main(["run", "table1", "--param", "samples=40", "--param", "seed=3", *common]) == 0
        assert main(["run", "table1", "--param", "samples=40", "--param", "seed=9", *common]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--json", "--cache-dir", str(tmp_path)]) == 0
        summary = json.loads(capsys.readouterr().out)
        # The second run evicted the first entry past the cap.
        assert summary["results"]["entries"] == 1
        assert summary["results"]["bytes"] <= 2000
        assert summary["results"]["evictions"] >= 1
        assert summary["results"]["evicted_bytes"] > 0
        assert summary["results"]["claims"] == 2
