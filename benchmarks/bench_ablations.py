"""Ablation benchmarks for the design choices called out in DESIGN.md.

* rounding vs. truncation when gating multiplier inputs,
* split as/nas power domains vs. a single shared domain,
* subword-parallelism reconfiguration overhead at full precision,
* sparsity guarding on/off in the Envision model.
"""

from __future__ import annotations

import pytest

from repro.core.power_model import PAPER_TABLE_I, DvafsSystem
from repro.core.scaling import characterize_multiplier, multiplier_energy_curves
from repro.envision import EnvisionPowerModel


def test_ablation_rounding_vs_truncation(benchmark):
    """Rounding halves the quantisation bias but costs extra activity."""

    def run():
        truncating = characterize_multiplier(samples=120, seed=3, rounding=False)
        rounding = characterize_multiplier(samples=120, seed=3, rounding=True)
        return truncating, rounding

    truncating, rounding = benchmark.pedantic(run, rounds=1, iterations=1)
    truncate_activity = truncating.profiles[4].das_activity_per_word
    round_activity = rounding.profiles[4].das_activity_per_word
    print(f"\n4b activity: truncation {truncate_activity:.0f} GE, rounding {round_activity:.0f} GE")
    # Rounding keeps more LSB logic toggling, so it should not be cheaper.
    assert round_activity >= 0.8 * truncate_activity


def test_ablation_split_vs_shared_power_domains(benchmark):
    """DVAS needs a split supply: with one shared domain its gains collapse to DAS."""
    system = DvafsSystem(
        as_capacitance_pf=20.0,
        nas_capacitance_pf=40.0,
        as_activity=0.5,
        nas_activity=0.4,
        base_frequency_mhz=500.0,
        nominal_voltage=1.1,
    )

    def run():
        scaling = PAPER_TABLE_I[4]
        split_domain = system.dvas_power(scaling).total_mw
        # A shared domain cannot drop below the nas timing requirement -> DAS.
        shared_domain = system.das_power(scaling).total_mw
        return split_domain, shared_domain

    split_domain, shared_domain = benchmark(run)
    print(f"\nDVAS 4b power: split domains {split_domain:.2f} mW, shared domain {shared_domain:.2f} mW")
    assert split_domain < shared_domain


def test_ablation_reconfiguration_overhead(benchmark):
    """The subword-parallel datapath costs ~21 % at 16 b but wins below 8 b."""

    def run():
        characterization = characterize_multiplier(samples=120, seed=5)
        return {
            (p.technique, p.precision): p.relative_energy
            for p in multiplier_energy_curves(characterization)
        }

    energies = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = energies[("DVAFS", 16)] - energies[("DAS", 16)]
    print(f"\nfull-precision overhead: {overhead:.2f} (paper: ~0.21)")
    assert 0.05 < overhead < 0.40
    assert energies[("DVAFS", 4)] < energies[("DAS", 4)]


def test_ablation_sparsity_guarding(benchmark):
    """Guarding is what pushes Envision beyond 4.2 TOPS/W on sparse layers."""
    model = EnvisionPowerModel()

    def run():
        guarded = model.power(
            precision=4,
            parallelism=4,
            frequency_mhz=50.0,
            as_voltage=0.65,
            nas_voltage=0.65,
            weight_sparsity=0.35,
            input_sparsity=0.87,
        ).total_mw
        unguarded = model.power(
            precision=4,
            parallelism=4,
            frequency_mhz=50.0,
            as_voltage=0.65,
            nas_voltage=0.65,
        ).total_mw
        return guarded, unguarded

    guarded, unguarded = benchmark(run)
    print(f"\n4x4b power: guarded {guarded:.1f} mW, dense {unguarded:.1f} mW")
    assert guarded < unguarded
    assert unguarded / guarded == pytest.approx(2.5, rel=0.6)
