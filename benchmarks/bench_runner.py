"""Benchmarks for the orchestration layer: result-cache replay speedup.

Mirrors the PR 1 (batch datapath) and PR 2 (trace engine) speedup gates:
the cached replay must be bit-identical to the cold computation and at
least 10x faster on a representative multi-experiment workload.  The
measured ratio lands in the CI timing-JSON artifact as BENCH_PR3
trajectory data (``extra_info.BENCH_PR3``).
"""

from __future__ import annotations

import json
import tempfile
import time

from repro.runner import ExperimentRunner, ResultCache

#: A representative slice of `run all`: multiplier characterisation
#: (table1/fig2 scale) plus both SIMD experiments at their full shapes.
WORKLOAD = [
    ("table1", {"samples": 200}),
    ("fig2", {"samples": 200}),
    ("fig4", {}),
    ("table2", {}),
]


def _run_workload(runner: ExperimentRunner) -> tuple[list[list[dict]], float]:
    start = time.perf_counter()
    reports = runner.run_many([(name, dict(config)) for name, config in WORKLOAD])
    return [report.rows for report in reports], time.perf_counter() - start


def test_cache_replay_speedup(benchmark, trajectory):
    """Warm-cache replay must be >= 10x faster than the cold run, rows bit-identical.

    Cold is timed once (it includes the cache writes); the warm replay takes
    the best of three runs to shed filesystem-cache noise, like the PR 1/PR 2
    gates.  One retry absorbs shared-runner timing noise in CI.
    """
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        runner = ExperimentRunner(cache=ResultCache(cache_dir))
        cold_rows, cold_seconds = _run_workload(runner)

        warm_seconds = float("inf")
        for _ in range(3):
            warm_rows, elapsed = _run_workload(runner)
            warm_seconds = min(warm_seconds, elapsed)
            assert json.dumps(warm_rows) == json.dumps(cold_rows)

        speedup = cold_seconds / warm_seconds
        if speedup < 10.0:  # pragma: no cover - noisy-runner fallback
            with tempfile.TemporaryDirectory(prefix="repro-bench-cache2-") as retry_dir:
                cold_runner = ExperimentRunner(cache=ResultCache(retry_dir))
                _cold_rows, cold_seconds = _run_workload(cold_runner)
                _warm_rows, warm_seconds = _run_workload(cold_runner)
                speedup = cold_seconds / warm_seconds
        print(
            f"\nresult-cache replay speedup: {speedup:.1f}x "
            f"(cold {cold_seconds * 1e3:.1f} ms, warm {warm_seconds * 1e3:.1f} ms, "
            f"{len(WORKLOAD)} experiments)"
        )
        benchmark.extra_info["BENCH_PR3"] = {
            "workload": [name for name, _config in WORKLOAD],
            "speedup": round(speedup, 2),
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "gate": 10.0,
        }
        trajectory("BENCH_PR3", benchmark.extra_info["BENCH_PR3"])
        benchmark.pedantic(lambda: _run_workload(runner), rounds=3, iterations=1)
        assert speedup >= 10.0


def test_parallel_run_matches_serial(benchmark):
    """`--jobs 2` fan-out returns rows byte-identical to the serial path."""
    serial_runner = ExperimentRunner(use_cache=False)
    parallel_runner = ExperimentRunner(use_cache=False)
    requests = [("fig4", {"input_length": 40, "taps": 7}), ("table2", {"input_length": 40, "taps": 7})]
    serial = serial_runner.run_many([(n, dict(c)) for n, c in requests], jobs=1)
    parallel = benchmark(
        lambda: parallel_runner.run_many([(n, dict(c)) for n, c in requests], jobs=2)
    )
    assert json.dumps([r.rows for r in serial]) == json.dumps([r.rows for r in parallel])
