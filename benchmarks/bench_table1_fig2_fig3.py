"""Benchmarks regenerating Table I, Fig. 2 and Fig. 3 (multiplier-level results)."""

from __future__ import annotations

import time

import pytest

from repro.core.scaling import characterize_multiplier
from repro.experiments import fig2, fig3, table1

SAMPLES = 200


@pytest.fixture(scope="module")
def characterization():
    """Shared multiplier characterisation reused by the three benchmarks."""
    return characterize_multiplier(samples=SAMPLES, seed=2017)


def test_table1_scaling_parameters(benchmark, characterization):
    """Table I: re-extract k0..k5 and N from the structural multiplier."""
    rows = benchmark(lambda: table1.run(characterization=characterization))
    print()
    print(table1.report(characterization=characterization))
    by_precision = {row["precision"]: row for row in rows}
    assert by_precision[4]["N"] == 4
    assert by_precision[8]["N"] == 2
    assert by_precision[4]["k3"] == pytest.approx(3.2, rel=0.5)


def test_fig2_frequency_slack_voltage_activity(benchmark, characterization):
    """Fig. 2: frequency, slack, voltage and activity vs precision."""
    rows = benchmark(lambda: fig2.run(characterization=characterization))
    print()
    print(fig2.report(characterization=characterization))
    by_precision = {row["precision"]: row for row in rows}
    assert by_precision[4]["frequency_mhz (2a)"] == 125.0
    assert 5.0 <= by_precision[4]["dvafs_slack_ns (2b)"] <= 7.6
    assert by_precision[4]["dvafs_voltage (2c)"] <= 0.8


def test_fig3a_energy_accuracy_curves(benchmark, characterization):
    """Fig. 3a: DAS/DVAS/DVAFS energy per word, normalised to the 16 b baseline."""
    rows = benchmark(lambda: fig3.run_fig3a(characterization=characterization))
    print()
    from repro.analysis.reporting import format_table

    print(format_table(rows, title="Fig. 3a"))
    by_key = {(r["technique"], r["precision"]): r["relative_energy"] for r in rows}
    assert by_key[("DVAFS", 4)] < 0.08          # >95 % savings (paper: >95 %)
    assert 1.1 < by_key[("DVAFS", 16)] < 1.35   # reconfiguration overhead (paper: 21 %)


def _measure_speedup(samples: int) -> tuple[float, float, float]:
    """(speedup, scalar seconds, batch seconds) of one characterisation run.

    The batch result must be bit-identical to the scalar reference, so the
    speedup is measured on equivalent work; the batch path takes the best of
    three runs to shed interpreter warm-up noise.
    """
    start = time.perf_counter()
    scalar = characterize_multiplier(samples=samples, seed=2017, batch=False)
    scalar_seconds = time.perf_counter() - start

    batch_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batch = characterize_multiplier(samples=samples, seed=2017, batch=True)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    assert batch.profiles == scalar.profiles
    assert batch.baseline_energy_per_word_pj == scalar.baseline_energy_per_word_pj
    return scalar_seconds / batch_seconds, scalar_seconds, batch_seconds


def test_batch_engine_speedup(benchmark, trajectory):
    """The vectorised batch datapath must be >= 10x faster than the scalar walk.

    Both paths run the full multiplier characterisation (the workload behind
    Table I / Fig. 2 / Fig. 3) at 2x the benchmark sample count -- the batch
    advantage grows with stream length, so the margin over the 10x gate is
    widest there.  One retry absorbs shared-runner timing noise in CI.  The
    measured ratio lands in the CI timing-JSON artifact as BENCH_PR1
    trajectory data, like the PR 2/PR 3 gates.
    """
    samples = 2 * SAMPLES
    # Warm both paths (imports, numpy ufunc caches) before timing.
    characterize_multiplier(samples=20, seed=2017, batch=True)
    characterize_multiplier(samples=20, seed=2017, batch=False)

    speedup, scalar_seconds, batch_seconds = _measure_speedup(samples)
    if speedup < 10.0:  # pragma: no cover - noisy-runner fallback
        speedup, scalar_seconds, batch_seconds = _measure_speedup(samples)
    print(
        f"\nbatch datapath speedup: {speedup:.1f}x "
        f"(scalar {scalar_seconds * 1e3:.1f} ms, batch {batch_seconds * 1e3:.1f} ms, "
        f"{samples} samples/mode)"
    )
    benchmark.extra_info["BENCH_PR1"] = {
        "workload": f"characterize_multiplier samples={samples}",
        "speedup": round(speedup, 2),
        "scalar_seconds": round(scalar_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "gate": 10.0,
    }
    trajectory("BENCH_PR1", benchmark.extra_info["BENCH_PR1"])
    benchmark.pedantic(
        lambda: characterize_multiplier(samples=samples, seed=2017, batch=True),
        rounds=1,
        iterations=1,
    )
    assert speedup >= 10.0


def test_fig3b_baseline_comparison(benchmark, characterization):
    """Fig. 3b: DVAFS vs approximate-computing baselines on an energy/RMSE plane."""
    rows = benchmark(
        lambda: fig3.run_fig3b(characterization=characterization, rmse_samples=600)
    )
    print()
    from repro.analysis.reporting import format_table

    print(format_table(rows, title="Fig. 3b"))
    dvafs_min = min(r["relative_energy"] for r in rows if r["scheme"] == "DVAFS")
    baseline_min = min(r["relative_energy"] for r in rows if r["scheme"] != "DVAFS")
    assert dvafs_min < baseline_min
