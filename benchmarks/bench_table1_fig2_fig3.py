"""Benchmarks regenerating Table I, Fig. 2 and Fig. 3 (multiplier-level results)."""

from __future__ import annotations

import pytest

from repro.core.scaling import characterize_multiplier
from repro.experiments import fig2, fig3, table1

SAMPLES = 200


@pytest.fixture(scope="module")
def characterization():
    """Shared multiplier characterisation reused by the three benchmarks."""
    return characterize_multiplier(samples=SAMPLES, seed=2017)


def test_table1_scaling_parameters(benchmark, characterization):
    """Table I: re-extract k0..k5 and N from the structural multiplier."""
    rows = benchmark(lambda: table1.run(characterization=characterization))
    print()
    print(table1.report(characterization=characterization))
    by_precision = {row["precision"]: row for row in rows}
    assert by_precision[4]["N"] == 4
    assert by_precision[8]["N"] == 2
    assert by_precision[4]["k3"] == pytest.approx(3.2, rel=0.5)


def test_fig2_frequency_slack_voltage_activity(benchmark, characterization):
    """Fig. 2: frequency, slack, voltage and activity vs precision."""
    rows = benchmark(lambda: fig2.run(characterization=characterization))
    print()
    print(fig2.report(characterization=characterization))
    by_precision = {row["precision"]: row for row in rows}
    assert by_precision[4]["frequency_mhz (2a)"] == 125.0
    assert 5.0 <= by_precision[4]["dvafs_slack_ns (2b)"] <= 7.6
    assert by_precision[4]["dvafs_voltage (2c)"] <= 0.8


def test_fig3a_energy_accuracy_curves(benchmark, characterization):
    """Fig. 3a: DAS/DVAS/DVAFS energy per word, normalised to the 16 b baseline."""
    rows = benchmark(lambda: fig3.run_fig3a(characterization=characterization))
    print()
    from repro.analysis.reporting import format_table

    print(format_table(rows, title="Fig. 3a"))
    by_key = {(r["technique"], r["precision"]): r["relative_energy"] for r in rows}
    assert by_key[("DVAFS", 4)] < 0.08          # >95 % savings (paper: >95 %)
    assert 1.1 < by_key[("DVAFS", 16)] < 1.35   # reconfiguration overhead (paper: 21 %)


def test_fig3b_baseline_comparison(benchmark, characterization):
    """Fig. 3b: DVAFS vs approximate-computing baselines on an energy/RMSE plane."""
    rows = benchmark(
        lambda: fig3.run_fig3b(characterization=characterization, rmse_samples=600)
    )
    print()
    from repro.analysis.reporting import format_table

    print(format_table(rows, title="Fig. 3b"))
    dvafs_min = min(r["relative_energy"] for r in rows if r["scheme"] == "DVAFS")
    baseline_min = min(r["relative_energy"] for r in rows if r["scheme"] != "DVAFS")
    assert dvafs_min < baseline_min
