"""Benchmarks regenerating Fig. 4 and Table II (SIMD-processor results)."""

from __future__ import annotations

import pytest

from repro.experiments import fig4, table2


def test_fig4_simd_energy_per_word(benchmark):
    """Fig. 4: SIMD processor energy per word vs precision for SW = 8 and 64."""
    rows = benchmark(lambda: fig4.run(simd_widths=(8, 64), input_length=40, taps=7))
    print()
    from repro.analysis.reporting import format_table

    print(format_table(rows, title="Fig. 4"))
    by_key = {
        (r["simd_width"], r["technique"], r["precision"]): r["relative_energy_per_word"]
        for r in rows
    }
    # ~85 % reduction at 4x4b (paper) and DVAFS < DVAS < DAS at every SW.
    assert by_key[(8, "DVAFS", 4)] < 0.2
    assert by_key[(8, "DVAFS", 4)] < by_key[(8, "DVAS", 4)] < by_key[(8, "DAS", 4)]
    assert by_key[(64, "DVAFS", 4)] < by_key[(64, "DVAS", 4)]


def test_table2_power_distribution(benchmark):
    """Table II: per-domain power split of the SW = 8 and SW = 64 processors."""
    rows = benchmark(lambda: table2.run(simd_widths=(8, 64), input_length=40, taps=7))
    print()
    print(table2.report(simd_widths=(8, 64), input_length=40, taps=7))
    sw8 = {row["mode"]: row for row in rows if row["SW"] == 8}
    assert sw8["1x16b"]["P [mW]"] == pytest.approx(36.0, rel=0.05)
    assert sw8["4x4b"]["P [mW]"] < 10.0
    # Memory becomes the dominant consumer in the 4x4b mode (47 % in the paper).
    assert sw8["4x4b"]["mem %"] > sw8["1x16b"]["mem %"]
