"""Benchmarks regenerating Fig. 4 and Table II (SIMD-processor results)."""

from __future__ import annotations

import time
from dataclasses import asdict

import numpy as np
import pytest

from repro.experiments import fig4, table2
from repro.simd import SimdProcessor, convolution_kernel, run_convolution


def test_fig4_simd_energy_per_word(benchmark):
    """Fig. 4: SIMD processor energy per word vs precision for SW = 8 and 64."""
    rows = benchmark(lambda: fig4.run(simd_widths=(8, 64), input_length=40, taps=7))
    print()
    from repro.analysis.reporting import format_table

    print(format_table(rows, title="Fig. 4"))
    by_key = {
        (r["simd_width"], r["technique"], r["precision"]): r["relative_energy_per_word"]
        for r in rows
    }
    # ~85 % reduction at 4x4b (paper) and DVAFS < DVAS < DAS at every SW.
    assert by_key[(8, "DVAFS", 4)] < 0.2
    assert by_key[(8, "DVAFS", 4)] < by_key[(8, "DVAS", 4)] < by_key[(8, "DAS", 4)]
    assert by_key[(64, "DVAFS", 4)] < by_key[(64, "DVAS", 4)]


#: The fig4/table2 convolution shape, scaled up so the per-run constant costs
#: (program analysis, workload preload) amortise like they do in the full
#: experiments.
SPEEDUP_WIDTHS = (8, 64)
SPEEDUP_INPUT_LENGTH = 320
SPEEDUP_TAPS = 9


def _speedup_workloads():
    return {
        width: convolution_kernel(
            width, input_length=SPEEDUP_INPUT_LENGTH, taps=SPEEDUP_TAPS, seed=2017
        )
        for width in SPEEDUP_WIDTHS
    }


def _run_workloads(workloads, *, batch):
    results = {}
    for width, workload in workloads.items():
        processor = SimdProcessor(width)
        outputs, result = run_convolution(processor, workload, batch=batch)
        results[width] = (outputs, result)
    return results


def _measure_engine_speedup(workloads):
    """(total speedup, per-width ratios, scalar seconds, engine seconds).

    Same methodology as PR 1's batch-datapath gate: the engine result must be
    bit-identical to the interpreter, so the speedup is measured on
    equivalent work; the interpreter is timed once, the trace engine takes
    the best of three runs to shed warm-up noise.
    """
    scalar_seconds = {}
    reference = {}
    for width, workload in workloads.items():
        start = time.perf_counter()
        processor = SimdProcessor(width)
        reference[width] = run_convolution(processor, workload, batch=False)
        scalar_seconds[width] = time.perf_counter() - start

    engine_seconds = {width: float("inf") for width in workloads}
    for _ in range(3):
        for width, workload in workloads.items():
            start = time.perf_counter()
            processor = SimdProcessor(width)
            outputs, result = run_convolution(processor, workload, batch=True)
            engine_seconds[width] = min(
                engine_seconds[width], time.perf_counter() - start
            )
            expected_outputs, expected = reference[width]
            assert np.array_equal(outputs, expected_outputs)
            assert asdict(result.counters) == asdict(expected.counters)

    total_scalar = sum(scalar_seconds.values())
    total_engine = sum(engine_seconds.values())
    ratios = {
        width: scalar_seconds[width] / engine_seconds[width] for width in workloads
    }
    return total_scalar / total_engine, ratios, total_scalar, total_engine


def test_trace_engine_speedup(benchmark, trajectory):
    """The trace-compiled engine must be >= 10x faster than the interpreter
    on the fig4/table2 convolution workloads (SW = 8 and 64), bit-identical
    results required.  The measured ratios land in the CI timing-JSON
    artifact as BENCH_PR2 trajectory data.
    """
    workloads = _speedup_workloads()
    # Warm both paths (imports, numpy ufunc caches) before timing.
    warm = convolution_kernel(8, input_length=32, taps=5, seed=1)
    run_convolution(SimdProcessor(8), warm, batch=True)
    run_convolution(SimdProcessor(8), warm, batch=False)

    speedup, ratios, scalar_seconds, engine_seconds = _measure_engine_speedup(workloads)
    if speedup < 10.0:  # pragma: no cover - noisy-runner fallback
        speedup, ratios, scalar_seconds, engine_seconds = _measure_engine_speedup(workloads)
    print(
        f"\ntrace engine speedup: {speedup:.1f}x "
        f"(interpreter {scalar_seconds * 1e3:.1f} ms, engine {engine_seconds * 1e3:.1f} ms; "
        + ", ".join(f"SW={width}: {ratio:.1f}x" for width, ratio in ratios.items())
        + ")"
    )
    benchmark.extra_info["BENCH_PR2"] = {
        "workload": f"convolution SW={SPEEDUP_WIDTHS} "
        f"L={SPEEDUP_INPUT_LENGTH} taps={SPEEDUP_TAPS}",
        "speedup_total": round(speedup, 2),
        "speedup_per_width": {str(w): round(r, 2) for w, r in ratios.items()},
        "interpreter_seconds": round(scalar_seconds, 4),
        "engine_seconds": round(engine_seconds, 4),
        "gate": 10.0,
    }
    trajectory("BENCH_PR2", benchmark.extra_info["BENCH_PR2"])
    benchmark.pedantic(
        lambda: _run_workloads(workloads, batch=True), rounds=3, iterations=1
    )
    assert speedup >= 10.0


def test_table2_power_distribution(benchmark):
    """Table II: per-domain power split of the SW = 8 and SW = 64 processors."""
    rows = benchmark(lambda: table2.run(simd_widths=(8, 64), input_length=40, taps=7))
    print()
    print(table2.report(simd_widths=(8, 64), input_length=40, taps=7))
    sw8 = {row["mode"]: row for row in rows if row["SW"] == 8}
    assert sw8["1x16b"]["P [mW]"] == pytest.approx(36.0, rel=0.05)
    assert sw8["4x4b"]["P [mW]"] < 10.0
    # Memory becomes the dominant consumer in the 4x4b mode (47 % in the paper).
    assert sw8["4x4b"]["mem %"] > sw8["1x16b"]["mem %"]
