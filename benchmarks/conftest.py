"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
reproduced rows (captured in ``bench_output.txt``); pytest-benchmark times the
regeneration itself.

Benchmarks that gate a speedup also persist their measured ratio through the
``trajectory`` fixture: the collected ``BENCH_PR*`` payloads are merged into
the tracked ``BENCH_TRAJECTORY.json`` at the repo root when the session ends,
so the perf trajectory of the project lives in-repo rather than only as
ephemeral CI timing artifacts.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_TRAJECTORY.json"

#: ``BENCH_PR*`` payloads recorded by benchmarks during this session.
_RECORDED: dict[str, dict[str, object]] = {}


@pytest.fixture
def trajectory():
    """Record one benchmark's speedup payload for ``BENCH_TRAJECTORY.json``.

    Usage: ``trajectory("BENCH_PR5", {"speedup": 2.3, ...})``.  Payloads are
    merged into the tracked JSON at session end; keys not re-measured this
    session keep their previous values.
    """

    def record(key: str, payload: dict[str, object]) -> None:
        _RECORDED[key] = payload

    return record


def pytest_sessionfinish(session, exitstatus):
    # Only persist when the whole session passed: a failed speedup gate must
    # not overwrite the tracked trajectory with its failing ratio.
    if not _RECORDED or exitstatus != 0:
        return
    existing: dict[str, object] = {}
    try:
        loaded = json.loads(TRAJECTORY_PATH.read_text())
        if isinstance(loaded, dict):
            existing = loaded
    except (OSError, ValueError):
        pass
    existing.update(_RECORDED)
    TRAJECTORY_PATH.write_text(json.dumps(existing, indent=1, sort_keys=True) + "\n")
