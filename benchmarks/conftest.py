"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
reproduced rows (captured in ``bench_output.txt``); pytest-benchmark times the
regeneration itself.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
