"""Benchmarks regenerating Fig. 8 and Table III (Envision results)."""

from __future__ import annotations

import pytest

from repro.experiments import fig8, table3


def test_fig8_envision_energy_curves(benchmark):
    """Fig. 8: Envision energy per word at constant frequency and constant throughput."""
    rows = benchmark(fig8.run)
    print()
    print(fig8.report())
    gains = fig8.headline_gains(rows)
    # Paper: 6.9x over DAS and 4.1x over DVAS at 4x4b constant throughput.
    assert 4.0 <= gains["dvafs_vs_das_4b"] <= 11.0
    assert 2.5 <= gains["dvafs_vs_dvas_4b"] <= 7.0


def test_table3_cnn_benchmarks_on_envision(benchmark):
    """Table III: per-layer power/efficiency of VGG16, AlexNet and LeNet-5."""
    rows = benchmark(table3.run)
    print()
    print(table3.report())
    totals = {str(row["layer"]).replace(" TOTAL", ""): row for row in rows if "TOTAL" in str(row["layer"])}
    # Paper totals: VGG16 26 mW / 2 TOPS/W, AlexNet 44 mW / 1.8, LeNet-5 25 mW / 3.
    assert totals["AlexNet"]["P [mW]"] == pytest.approx(44.0, rel=0.5)
    assert totals["LeNet-5"]["Eff [TOPS/W]"] > totals["AlexNet"]["Eff [TOPS/W]"]
    assert totals["VGG16"]["Eff [TOPS/W]"] == pytest.approx(2.0, rel=0.8)


def test_table3_from_substrate(benchmark):
    """Table III regenerated from our own CNN substrate instead of the published profile."""
    rows = benchmark.pedantic(lambda: table3.run(from_substrate=True), rounds=1, iterations=1)
    print()
    from repro.analysis.reporting import format_table

    print(format_table(rows, title="Table III (workloads regenerated from the CNN substrate)"))
    totals = [row for row in rows if "TOTAL" in str(row["layer"])]
    assert len(totals) == 3
    for row in totals:
        assert float(row["Eff [TOPS/W]"]) > 0.5
