"""Benchmark regenerating Fig. 6 (per-layer minimum precision profiles)."""

from __future__ import annotations

from repro.experiments import fig6


def test_fig6_lenet_precision_profile(benchmark):
    """Fig. 6 (LeNet-5): per-layer weight/activation bits at 99 % relative accuracy."""
    rows = benchmark.pedantic(
        lambda: fig6.run_lenet(train_samples=320, test_samples=80, epochs=5, evaluation_samples=30),
        rounds=1,
        iterations=1,
    )
    print()
    from repro.analysis.reporting import format_table

    print(format_table(rows, title="Fig. 6: LeNet-5"))
    bits = [max(row["weight_bits"], row["activation_bits"]) for row in rows]
    # The paper reports 1-6 bits for LeNet-5; allow a small margin for the
    # synthetic-task substitution.
    assert max(bits) <= 8
    assert min(bits) <= 6


def test_fig6_alexnet_precision_profile(benchmark):
    """Fig. 6 (AlexNet): per-layer bits of the reduced-resolution AlexNet proxy."""
    rows = benchmark.pedantic(
        lambda: fig6.run_alexnet(input_size=67, evaluation_samples=6),
        rounds=1,
        iterations=1,
    )
    print()
    from repro.analysis.reporting import format_table

    print(format_table(rows, title="Fig. 6: AlexNet"))
    lenet_rows = fig6.run_lenet(train_samples=320, test_samples=80, epochs=5, evaluation_samples=30)
    alexnet_need = max(max(r["weight_bits"], r["activation_bits"]) for r in rows)
    lenet_need = max(max(r["weight_bits"], r["activation_bits"]) for r in lenet_rows)
    # AlexNet needs at least as much precision as LeNet-5 (5-9 b vs 1-6 b in the paper).
    assert alexnet_need >= lenet_need
