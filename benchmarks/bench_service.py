"""Benchmark for the HTTP service: concurrent warm-path latency (PR 6 gate).

The service's warm path must stay an HTTP-thin veneer over the result
cache: 32 concurrent ``POST /v1/experiments/table1/run`` requests against
a warm cache must all answer bit-identically, with an end-to-end p50
latency within 10x of replaying the *same* 32-way concurrent workload
directly in-process (threads calling ``ExperimentRunner.run``).  Both
paths share the GIL-serialised cache decode, so the ratio isolates what
the HTTP transport and middleware pipeline add on top.  The measured
numbers land in ``BENCH_TRAJECTORY.json`` as BENCH_PR6.
"""

from __future__ import annotations

import http.client
import json
import statistics
import tempfile
import threading
import time

from repro.runner import ExperimentRunner, ResultCache
from repro.service import BackgroundServer, build_app

EXPERIMENT = "table1"
PARAMS = {"samples": 60, "seed": 11}
CONCURRENCY = 32
GATE = 10.0


def _direct_warm_median(runner: ExperimentRunner) -> float:
    """Median per-call seconds of a CONCURRENCY-way in-process warm replay.

    The same workload the service gets, minus HTTP: CONCURRENCY threads
    released by a barrier, each calling the runner's warm path once.
    """
    timings = [0.0] * CONCURRENCY
    barrier = threading.Barrier(CONCURRENCY)

    def worker(index: int) -> None:
        barrier.wait()
        start = time.perf_counter()
        report = runner.run(EXPERIMENT, **PARAMS)
        timings[index] = time.perf_counter() - start
        assert report.cached is True

    threads = [threading.Thread(target=worker, args=(index,)) for index in range(CONCURRENCY)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return statistics.median(timings)


def _concurrent_warm_requests(port: int) -> tuple[list[float], list[str]]:
    """Fire CONCURRENCY simultaneous warm POSTs; per-request latencies + bodies."""
    timings: list[float] = [0.0] * CONCURRENCY
    bodies: list[str] = [""] * CONCURRENCY
    barrier = threading.Barrier(CONCURRENCY)
    payload = json.dumps({"params": PARAMS})

    def worker(index: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        barrier.wait()
        start = time.perf_counter()
        conn.request(
            "POST",
            f"/v1/experiments/{EXPERIMENT}/run",
            body=payload,
            headers={"X-Request-Id": "bench-warm"},
        )
        response = conn.getresponse()
        document = json.loads(response.read())
        timings[index] = time.perf_counter() - start
        assert response.status == 200, document
        document.pop("elapsed_seconds")  # per-request lookup time; everything else is cached
        bodies[index] = json.dumps(document, sort_keys=True)
        conn.close()

    threads = [threading.Thread(target=worker, args=(index,)) for index in range(CONCURRENCY)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return timings, bodies


def test_concurrent_warm_latency_gate(benchmark, trajectory):
    """32-way concurrent warm hits: bit-identical bodies, p50 <= 10x direct."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as cache_dir:
        runner = ExperimentRunner(cache=ResultCache(cache_dir))
        cold = runner.run(EXPERIMENT, **PARAMS)  # populate the cache once
        assert cold.cached is False
        # Best-of-three on both sides to shed scheduler noise, mirroring
        # the warm-timing convention of the earlier gates.
        direct_median = min(_direct_warm_median(runner) for _ in range(3))

        with BackgroundServer(build_app(runner)) as server:
            p50 = float("inf")
            for _ in range(3):
                timings, bodies = _concurrent_warm_requests(server.port)
                assert len(set(bodies)) == 1  # all 32 responses byte-identical
                assert json.loads(bodies[0])["rows"] == cold.to_jsonable()["rows"]
                p50 = min(p50, statistics.median(timings))

            ratio = p50 / direct_median
            print(
                f"\nservice warm p50: {p50 * 1e3:.2f} ms over {CONCURRENCY} concurrent requests "
                f"(direct warm replay {direct_median * 1e3:.2f} ms, ratio {ratio:.1f}x, gate {GATE}x)"
            )
            benchmark.extra_info["BENCH_PR6"] = {
                "experiment": EXPERIMENT,
                "concurrency": CONCURRENCY,
                "service_p50_ms": round(p50 * 1e3, 3),
                "direct_warm_ms": round(direct_median * 1e3, 3),
                "ratio": round(ratio, 2),
                "gate": GATE,
            }
            trajectory("BENCH_PR6", benchmark.extra_info["BENCH_PR6"])
            benchmark.pedantic(
                lambda: _concurrent_warm_requests(server.port), rounds=3, iterations=1
            )
            assert ratio <= GATE
