"""Benchmark for the cross-experiment artifact graph: cold `run all` speedup.

Mirrors the PR 1-PR 3 speedup gates: a cold ``run all --jobs 4`` through the
artifact graph (shared intermediates computed once per content address, DAG
waves ahead of the experiment fan-out, incremental precision-search
producers) must produce rows bit-identical to the serial no-reuse path --
every driver executing its full-forward reference searches with no store
active -- and be at least 2x faster.  The measured ratio lands in the CI
timing-JSON artifact as BENCH_PR5 trajectory data (``extra_info.BENCH_PR5``)
and in the tracked ``BENCH_TRAJECTORY.json``.

Both arms are *cold*: fresh cache/store directories each run.  The two
arms are measured interleaved (serial, graph, serial, graph, ...) and
each takes its best-of-three -- the minimum is the least-noisy estimator
of the true cost and the interleaving keeps the thermal state
comparable -- and
one full re-measure absorbs shared-runner noise before the gate is
enforced (the PR 3 pattern).  On a single-core runner the win comes from
deduplicating shared work and the bit-identical incremental search
(measured ~2x there); multi-core runners add the topological-wave and
experiment fan-out overlap on top.
"""

from __future__ import annotations

import json
import tempfile
import time

from repro.runner import ExperimentRunner, ResultCache

GATE = 2.0
JOBS = 4


def _serial_no_reuse() -> tuple[str, float]:
    """Cold serial `run all`, artifact reuse off: the pre-graph reference."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-serial-") as cache_dir:
        runner = ExperimentRunner(
            cache=ResultCache(cache_dir), use_cache=False, use_artifacts=False
        )
        start = time.perf_counter()
        reports = runner.run_all(jobs=1)
        elapsed = time.perf_counter() - start
    return json.dumps([report.rows for report in reports]), elapsed


def _graph_cold(jobs: int = JOBS) -> tuple[str, float]:
    """Cold `run all --jobs N` through the artifact graph (fresh stores)."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-graph-") as cache_dir:
        runner = ExperimentRunner(cache=ResultCache(cache_dir))
        start = time.perf_counter()
        reports = runner.run_all(jobs=jobs)
        elapsed = time.perf_counter() - start
    return json.dumps([report.rows for report in reports]), elapsed


def _measure() -> tuple[float, float, float]:
    """(speedup, serial seconds, graph seconds); rows gated bit-identical.

    Interleaved best-of-three per arm: min-of-repeats estimates each arm's
    true cost and alternating the arms keeps shared-runner noise symmetric.
    """
    serial_seconds = float("inf")
    graph_seconds = float("inf")
    serial_rows = None
    for _attempt in range(3):
        rows, elapsed = _serial_no_reuse()
        if serial_rows is None:
            serial_rows = rows
        serial_seconds = min(serial_seconds, elapsed)
        graph_rows, elapsed = _graph_cold()
        assert graph_rows == serial_rows, "artifact-graph rows differ from serial"
        graph_seconds = min(graph_seconds, elapsed)
    return serial_seconds / graph_seconds, serial_seconds, graph_seconds


def test_cold_run_speedup(benchmark, trajectory):
    """Cold `run all --jobs 4` with the artifact graph: >= 2x, bit-identical."""
    speedup, serial_seconds, graph_seconds = _measure()
    if speedup < GATE:  # pragma: no cover - noisy-runner fallback
        retry = _measure()
        if retry[0] > speedup:
            speedup, serial_seconds, graph_seconds = retry
    print(
        f"\ncold run-all artifact-graph speedup: {speedup:.2f}x "
        f"(serial no-reuse {serial_seconds:.1f} s, graph --jobs {JOBS} "
        f"{graph_seconds:.1f} s)"
    )
    payload = {
        "workload": "run all (8 experiments, default configs)",
        "jobs": JOBS,
        "speedup": round(speedup, 2),
        "serial_seconds": round(serial_seconds, 2),
        "graph_seconds": round(graph_seconds, 2),
        "gate": GATE,
    }
    benchmark.extra_info["BENCH_PR5"] = payload
    trajectory("BENCH_PR5", payload)
    benchmark.pedantic(_graph_cold, rounds=1, iterations=1)
    assert speedup >= GATE
