"""Bit-level walk-through of the DVAFS multiplier.

Shows the three mechanisms of the paper on the structural models:

1. precision gating reduces switching activity (DAS),
2. the shortened critical path allows a lower supply (DVAS),
3. subword-parallel reuse allows a lower frequency and therefore an even
   lower supply at constant throughput (DVAFS),

and compares the resulting energy/accuracy points against the approximate
multiplier baselines of Fig. 3b.

Run with:  python examples/multiplier_tradeoff.py
"""

import numpy as np

from repro.analysis import format_table
from repro.arithmetic import (
    BoothWallaceMultiplier,
    SubwordParallelMultiplier,
    all_baseline_curves,
)
from repro.circuit import TECH_40NM_LP_LVT, scale_voltage


def main() -> None:
    rng = np.random.default_rng(0)
    xs = [int(v) for v in rng.integers(-32768, 32768, 200)]
    ys = [int(v) for v in rng.integers(-32768, 32768, 200)]

    # -- 1. DAS: activity drops with gated precision --------------------------
    rows = []
    for precision in (16, 12, 8, 4):
        multiplier = BoothWallaceMultiplier(16)
        multiplier.set_precision(precision)
        multiplier.multiply_stream(xs, ys)
        path = multiplier.critical_path()
        scaled = scale_voltage(path, clock_period_ns=2.0)
        rows.append(
            {
                "precision": precision,
                "activity [GE/word]": round(multiplier.activity.toggles_per_word),
                "critical path [ns @1.1V]": round(path.delay_ns(1.1), 2),
                "slack [ns]": round(scaled.slack_at_nominal_ns, 2),
                "V_min @500MHz": round(scaled.voltage, 2),
            }
        )
    print(format_table(rows, title="DAS/DVAS: gated precision on the 16b Booth-Wallace multiplier"))

    # -- 2. DVAFS: subword parallelism allows frequency scaling ---------------
    rows = []
    for precision in (16, 8, 4):
        multiplier = SubwordParallelMultiplier(16)
        mode = multiplier.set_precision(precision)
        lo, hi = -(1 << (precision - 1)), (1 << (precision - 1)) - 1
        sub_x = [int(v) for v in rng.integers(lo, hi + 1, 200)]
        sub_y = [int(v) for v in rng.integers(lo, hi + 1, 200)]
        usable = len(sub_x) - len(sub_x) % mode.parallelism
        products = multiplier.multiply_stream(sub_x[:usable], sub_y[:usable])
        assert products == [a * b for a, b in zip(sub_x[:usable], sub_y[:usable])]
        period_ns = 2.0 * mode.parallelism
        scaled = scale_voltage(multiplier.critical_path(), clock_period_ns=period_ns)
        energy = multiplier.activity.energy_per_word_pj(TECH_40NM_LP_LVT, scaled.voltage)
        rows.append(
            {
                "mode": str(mode),
                "frequency [MHz]": 500 / mode.parallelism,
                "V_min": round(scaled.voltage, 2),
                "energy [pJ/word]": round(energy, 3),
            }
        )
    print(format_table(rows, title="DVAFS: subword-parallel modes at constant 500 MOPS"))

    # -- 3. The competing approximate multipliers of Fig. 3b ------------------
    rows = []
    for scheme, points in all_baseline_curves().items():
        for point in points:
            rows.append(
                {
                    "scheme": scheme,
                    "configuration": point.label,
                    "relative RMSE": f"{point.rmse:.2e}",
                    "relative energy": round(point.relative_energy, 2),
                    "runtime adaptive": point.runtime_adaptive,
                }
            )
    print(format_table(rows, title="Approximate-multiplier baselines (Fig. 3b)"))


if __name__ == "__main__":
    main()
