"""Orchestration quickstart: cached runs and process-parallel sweeps.

Shows the PR 3 experiment runner from Python (the same machinery behind
``python -m repro``): a cold run lands in the content-addressed result
cache, the replay is bit-identical and orders of magnitude faster, and a
parameter sweep fans out over worker processes with deterministic record
order.

Run with:  python examples/orchestration.py
"""

import json
import tempfile

from repro.analysis import format_table, parameter_sweep
from repro.runner import ExperimentRunner, ResultCache


def evaluate_energy(simd_width: int, precision: int) -> dict[str, object]:
    """One sweep cell: relative DVAFS energy of a fig4-style configuration.

    Module-level so ``jobs > 1`` can ship it to worker processes.
    """
    from repro.experiments import fig4

    rows = fig4.run(
        simd_widths=(simd_width,), precisions=(precision,), input_length=24, taps=5
    )
    dvafs = next(row for row in rows if row["technique"] == "DVAFS")
    return {"relative_energy_per_word": dvafs["relative_energy_per_word"]}


def main() -> None:
    # 1. A cache-aware runner (isolated cache root for the demo; by default
    #    the cache lives at $REPRO_CACHE_DIR or ~/.cache/dvafs-repro).
    runner = ExperimentRunner(cache=ResultCache(tempfile.mkdtemp(prefix="repro-demo-")))

    cold = runner.run("table2", input_length=24, taps=5)
    warm = runner.run("table2", input_length=24, taps=5)
    assert warm.cached and json.dumps(warm.rows) == json.dumps(cold.rows)
    print(
        f"table2: cold {cold.elapsed_seconds * 1e3:.1f} ms -> warm replay "
        f"(bit-identical, key {warm.key[:12]}...)\n"
    )

    # 2. Rendering works identically from live or cached rows.
    print(runner.render(warm))

    # 3. A deterministic parallel sweep: records arrive in grid order no
    #    matter which worker finishes first.
    sweep = parameter_sweep(
        {"simd_width": [8, 64], "precision": [16, 8, 4]}, evaluate_energy, jobs=2
    )
    print(format_table(sweep.records, title="DVAFS energy/word sweep (2 worker processes)"))

    # 4. Provenance of everything computed so far.
    print(format_table(runner.cache.ls(), title="result cache contents"))


if __name__ == "__main__":
    main()
