"""Running a convolution kernel on the DVAFS-compatible SIMD vector processor.

Assembles the convolution program, executes it on the SW = 8 processor --
once cycle by cycle through the interpreter and once through the
trace-compiled execution engine (``batch=True``), checking that both produce
bit-identical outputs and counters -- and evaluates the energy of the same
kernel in every D(V)A(F)S mode of Table II.

Run with:  python examples/simd_convolution.py
"""

import time
from dataclasses import asdict

import numpy as np

from repro.analysis import format_table
from repro.simd import SimdPowerModel, SimdProcessor, convolution_kernel, run_convolution


def main() -> None:
    simd_width = 8
    processor = SimdProcessor(simd_width)
    workload = convolution_kernel(simd_width, input_length=48, taps=9, sparsity=0.3)

    print("Convolution kernel (first instructions):")
    print("\n".join(workload.program.disassemble().splitlines()[:12]))
    print("  ...\n")

    start = time.perf_counter()
    reference_outputs, reference = run_convolution(processor, workload, batch=False)
    interpreter_seconds = time.perf_counter() - start
    processor = SimdProcessor(simd_width)
    start = time.perf_counter()
    outputs, execution = run_convolution(processor, workload, batch=True)
    engine_seconds = time.perf_counter() - start

    assert np.array_equal(outputs, workload.reference_output()), "output mismatch"
    assert np.array_equal(outputs, reference_outputs)
    assert asdict(execution.counters) == asdict(reference.counters), "counter mismatch"
    counters = execution.counters
    print(
        f"Executed {counters.cycles} cycles, {counters.instructions} instructions, "
        f"{workload.macs} MACs across {simd_width} lanes; outputs match numpy.\n"
    )
    print(
        f"Trace engine matched the interpreter bit for bit "
        f"({interpreter_seconds * 1e3:.1f} ms interpreted, "
        f"{engine_seconds * 1e3:.1f} ms trace-compiled, "
        f"{interpreter_seconds / engine_seconds:.0f}x).\n"
    )
    guarded = processor.vector_unit.counters.guarded_macs
    total = processor.vector_unit.counters.mac_operations
    print(f"Sparsity guarding skipped {guarded}/{total} MACs ({100 * guarded / total:.0f}%).\n")

    model = SimdPowerModel(simd_width)
    model.calibrate(execution)
    baseline = model.report(execution, technique="DAS", precision=16)
    rows = []
    for technique, precision in [("DAS", 16), ("DVAS", 8), ("DVAS", 4), ("DVAFS", 8), ("DVAFS", 4)]:
        report = model.report(execution, technique=technique, precision=precision)
        fractions = report.domain_fractions()
        rows.append(
            {
                "mode": report.mode_label,
                "technique": technique,
                "f [MHz]": report.frequency_mhz,
                "Vas": round(report.as_voltage, 2),
                "Vnas": round(report.nas_voltage, 2),
                "mem %": round(100 * fractions["mem"]),
                "nas %": round(100 * fractions["nas"]),
                "as %": round(100 * fractions["as"]),
                "P [mW]": round(report.power_mw, 1),
                "E/word vs 16b": round(report.energy_per_word_pj / baseline.energy_per_word_pj, 3),
            }
        )
    print(format_table(rows, title=f"SW={simd_width} SIMD processor, convolution kernel (Table II / Fig. 4)"))


if __name__ == "__main__":
    main()
