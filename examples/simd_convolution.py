"""Running a convolution kernel on the DVAFS-compatible SIMD vector processor.

Assembles the convolution program, executes it cycle by cycle on the SW = 8
processor, verifies the outputs against numpy, and evaluates the energy of
the same kernel in every D(V)A(F)S mode of Table II.

Run with:  python examples/simd_convolution.py
"""

import numpy as np

from repro.analysis import format_table
from repro.simd import SimdPowerModel, SimdProcessor, convolution_kernel, run_convolution


def main() -> None:
    simd_width = 8
    processor = SimdProcessor(simd_width)
    workload = convolution_kernel(simd_width, input_length=48, taps=9, sparsity=0.3)

    print("Convolution kernel (first instructions):")
    print("\n".join(workload.program.disassemble().splitlines()[:12]))
    print("  ...\n")

    outputs, execution = run_convolution(processor, workload)
    assert np.array_equal(outputs, workload.reference_output()), "output mismatch"
    counters = execution.counters
    print(
        f"Executed {counters.cycles} cycles, {counters.instructions} instructions, "
        f"{workload.macs} MACs across {simd_width} lanes; outputs match numpy.\n"
    )
    guarded = processor.vector_unit.counters.guarded_macs
    total = processor.vector_unit.counters.mac_operations
    print(f"Sparsity guarding skipped {guarded}/{total} MACs ({100 * guarded / total:.0f}%).\n")

    model = SimdPowerModel(simd_width)
    model.calibrate(execution)
    baseline = model.report(execution, technique="DAS", precision=16)
    rows = []
    for technique, precision in [("DAS", 16), ("DVAS", 8), ("DVAS", 4), ("DVAFS", 8), ("DVAFS", 4)]:
        report = model.report(execution, technique=technique, precision=precision)
        fractions = report.domain_fractions()
        rows.append(
            {
                "mode": report.mode_label,
                "technique": technique,
                "f [MHz]": report.frequency_mhz,
                "Vas": round(report.as_voltage, 2),
                "Vnas": round(report.nas_voltage, 2),
                "mem %": round(100 * fractions["mem"]),
                "nas %": round(100 * fractions["nas"]),
                "as %": round(100 * fractions["as"]),
                "P [mW]": round(report.power_mw, 1),
                "E/word vs 16b": round(report.energy_per_word_pj / baseline.energy_per_word_pj, 3),
            }
        )
    print(format_table(rows, title=f"SW={simd_width} SIMD processor, convolution kernel (Table II / Fig. 4)"))


if __name__ == "__main__":
    main()
