"""Quickstart: the DVAFS energy-accuracy trade-off in a dozen lines.

Characterises the precision-scalable Booth-Wallace multiplier, prints the
extracted Table-I scaling parameters and the DAS / DVAS / DVAFS energy
curves, and shows how an operating point is picked for a given precision
requirement.

Run with:  python examples/quickstart.py
"""

from repro import characterize_multiplier, multiplier_energy_curves
from repro.analysis import format_table
from repro.core import PrecisionRequirement, PrecisionScheduler
from repro.core.operating_point import operating_points_from_characterization


def main() -> None:
    # 1. Characterise the multiplier (activity, critical paths, voltages).
    characterization = characterize_multiplier(samples=300)
    print(f"16b baseline energy: {characterization.baseline_energy_per_word_pj:.2f} pJ/word\n")

    # 2. Table I: the extracted k factors and subword parallelism.
    rows = [
        {
            "precision": precision,
            "k0": round(row.k0, 2),
            "k2": round(row.k2, 2),
            "k3": round(row.k3, 2),
            "k4": round(row.k4, 2),
            "N": row.parallelism,
        }
        for precision, row in sorted(characterization.scaling_parameters().items(), reverse=True)
    ]
    print(format_table(rows, title="Extracted scaling parameters (Table I)"))

    # 3. Fig. 3a: energy per word of DAS, DVAS and DVAFS vs precision.
    curves = [
        {
            "technique": point.technique,
            "precision": point.precision,
            "relative_energy": round(point.relative_energy, 3),
            "V_as": round(point.voltage_as, 2),
            "f [MHz]": point.frequency_mhz,
        }
        for point in multiplier_energy_curves(characterization)
    ]
    print(format_table(curves, title="Energy per word, normalised to the plain 16b multiplier (Fig. 3a)"))

    # 4. Pick the cheapest operating point for a task that needs 6 bits.
    points = operating_points_from_characterization(characterization)["DVAFS"]
    energies = {
        point.precision: point_energy
        for point, point_energy in zip(
            points,
            [p.relative_energy for p in multiplier_energy_curves(characterization) if p.technique == "DVAFS"],
        )
    }
    scheduler = PrecisionScheduler(points, lambda p: energies[p.precision])
    task = scheduler.select(PrecisionRequirement("feature-extraction", required_bits=6))
    print(
        f"A 6-bit task runs in the {task.operating_point.mode_label} mode at "
        f"{task.operating_point.frequency_mhz:.0f} MHz / {task.operating_point.as_voltage:.2f} V, "
        f"costing {task.energy_per_operation_pj:.3f}x the 16b baseline energy per word."
    )


if __name__ == "__main__":
    main()
