"""Embedded deep learning through DVAFS: per-layer precision on Envision.

End-to-end reproduction of the paper's Section IV/V story:

1. train a LeNet-5 on the synthetic digit task (the offline MNIST stand-in),
2. find the minimum per-layer precision at 99 % relative accuracy (Fig. 6),
3. measure per-layer sparsity,
4. schedule every layer onto the Envision DVAFS mode table and report power,
   frame rate and TOPS/W (Table III), comparing per-layer scaling against a
   fixed worst-case precision.

Run with:  python examples/embedded_cnn_envision.py
"""

from repro.analysis import format_table
from repro.envision import EnvisionScheduler, LayerWorkload
from repro.nn import PrecisionSearch, Trainer, lenet5, measure_sparsity, prune_network, synthetic_digits


def main() -> None:
    # 1. Train the network on the synthetic digit task.
    dataset = synthetic_digits(train_samples=500, test_samples=150, size=16)
    network = lenet5(input_size=16)
    trainer = Trainer(network, learning_rate=0.1)
    history = trainer.fit(dataset, epochs=8, batch_size=25)
    print(f"LeNet-5 trained on synthetic digits: {100 * history.final_accuracy:.1f}% test accuracy\n")

    # 2. Per-layer minimum precision (Fig. 6).
    prune_network(network, 0.3)  # the pruned/compressed networks the paper assumes
    search = PrecisionSearch(
        network, dataset.test_images[:50], labels=dataset.test_labels[:50]
    )
    profiles = {profile.layer: profile for profile in search.profile()}
    print(
        format_table(
            [
                {"layer": name, "weight bits": p.weight_bits, "activation bits": p.activation_bits}
                for name, p in profiles.items()
            ],
            title="Minimum per-layer precision at 99% relative accuracy (Fig. 6)",
        )
    )

    # 3. Per-layer sparsity.
    sparsity = {s.name: s for s in measure_sparsity(network, dataset.test_images[:30])}

    # 4. Schedule onto Envision (Table III style).
    summaries = {s.name: s for s in network.layer_summaries()}
    workloads = [
        LayerWorkload(
            name=name,
            macs=summaries[name].macs,
            weight_bits=profiles[name].weight_bits,
            activation_bits=profiles[name].activation_bits,
            weight_sparsity=sparsity[name].weight_sparsity,
            input_sparsity=sparsity[name].input_sparsity,
        )
        for name in summaries
    ]
    scheduler = EnvisionScheduler()
    adaptive = scheduler.schedule_network("LeNet-5 (synthetic)", workloads)
    uniform = scheduler.schedule_uniform("LeNet-5 (worst-case precision)", workloads)

    print(
        format_table(
            [
                {
                    "layer": layer.layer,
                    "mode": layer.mode_label,
                    "f [MHz]": layer.frequency_mhz,
                    "V": round(layer.voltage, 2),
                    "MMACs": round(layer.mmacs, 2),
                    "P [mW]": round(layer.power_mw, 1),
                    "TOPS/W": round(layer.tops_per_watt, 1),
                }
                for layer in adaptive.layers
            ],
            title="Per-layer schedule on Envision (Table III style)",
        )
    )
    gain = uniform.total_energy_uj / adaptive.total_energy_uj
    print(
        f"Frame energy: {adaptive.total_energy_uj:.2f} uJ with per-layer DVAFS vs "
        f"{uniform.total_energy_uj:.2f} uJ at fixed worst-case precision "
        f"({gain:.1f}x saving); overall {adaptive.tops_per_watt:.1f} TOPS/W at "
        f"{adaptive.frames_per_second:.0f} fps."
    )


if __name__ == "__main__":
    main()
